// IPv4 addresses and the /16 //24 subnet relations used by the domain
// similarity features (IP space proximity, §IV-D of the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace eid::util {

/// An IPv4 address stored in host byte order.
struct Ipv4 {
  std::uint32_t value = 0;

  static constexpr Ipv4 from_octets(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                                    std::uint32_t d) {
    return Ipv4{(a << 24) | (b << 16) | (c << 8) | d};
  }

  constexpr std::uint32_t subnet24() const { return value >> 8; }
  constexpr std::uint32_t subnet16() const { return value >> 16; }

  friend constexpr bool operator==(Ipv4 a, Ipv4 b) { return a.value == b.value; }
  friend constexpr bool operator<(Ipv4 a, Ipv4 b) { return a.value < b.value; }
};

/// True if the two addresses share the top 24 bits.
constexpr bool same_subnet24(Ipv4 a, Ipv4 b) { return a.subnet24() == b.subnet24(); }

/// True if the two addresses share the top 16 bits.
constexpr bool same_subnet16(Ipv4 a, Ipv4 b) { return a.subnet16() == b.subnet16(); }

/// Dotted-quad formatting.
std::string format_ipv4(Ipv4 ip);

/// Parse dotted-quad; rejects out-of-range octets and trailing garbage.
std::optional<Ipv4> parse_ipv4(std::string_view text);

/// RFC1918-style check used to classify internal enterprise sources.
constexpr bool is_private_ipv4(Ipv4 ip) {
  const std::uint32_t v = ip.value;
  return (v >> 24) == 10 ||                         // 10.0.0.0/8
         (v >> 20) == (172u << 4 | 1) ||            // 172.16.0.0/12
         (v >> 16) == (192u << 8 | 168);            // 192.168.0.0/16
}

}  // namespace eid::util

template <>
struct std::hash<eid::util::Ipv4> {
  std::size_t operator()(eid::util::Ipv4 ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value);
  }
};
