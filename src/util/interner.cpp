#include "util/interner.h"

#include <algorithm>

namespace eid::util {

InternerMerge merge_interners(std::span<const ShardInterner* const> shards) {
  struct Entry {
    std::uint64_t seq = 0;
    std::uint32_t shard = 0;
    InternId local = 0;
  };

  InternerMerge out;
  out.to_global.resize(shards.size());
  std::size_t total = 0;
  for (const ShardInterner* shard : shards) total += shard->size();

  std::vector<Entry> entries;
  entries.reserve(total);
  for (std::uint32_t s = 0; s < shards.size(); ++s) {
    out.to_global[s].assign(shards[s]->size(), kInvalidInternId);
    for (InternId i = 0; i < shards[s]->size(); ++i) {
      entries.push_back(Entry{shards[s]->first_seq(i), s, i});
    }
  }
  // Replaying first appearances in global stream order assigns ids exactly
  // as a sequential Interner over the unsharded stream would have: a string
  // living in several shards gets its id at its earliest appearance, and
  // later shards dedup onto it through intern().
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  for (const Entry& entry : entries) {
    out.to_global[entry.shard][entry.local] =
        out.interner.intern(shards[entry.shard]->name(entry.local));
  }
  return out;
}

InternerMerge ShardedInterner::merge() const {
  std::vector<const ShardInterner*> refs;
  refs.reserve(shards_.size());
  for (const ShardInterner& shard : shards_) refs.push_back(&shard);
  return merge_interners(refs);
}

}  // namespace eid::util
