#include "util/executor.h"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace eid::util {

namespace {

/// Set inside worker_loop so nested parallel helpers on a worker run
/// inline instead of deadlocking on their own pool.
thread_local const Executor* t_worker_of = nullptr;

/// Pool health on the process registry (obs/metrics.h): how many tasks
/// the workers carry, how long tasks sit queued before a worker picks
/// them up, and whether a day-sized submit is occupying a worker — the
/// signals a supervisor needs to see an under- or over-provisioned pool.
struct ExecutorMetrics {
  obs::Counter& dispatched =
      obs::metrics().counter("eid_executor_tasks_dispatched_total");
  obs::Counter& spawned =
      obs::metrics().counter("eid_executor_threads_spawned_total");
  obs::Gauge& queue_depth = obs::metrics().gauge("eid_executor_queue_depth");
  obs::Gauge& long_tasks =
      obs::metrics().gauge("eid_executor_long_tasks_inflight");
  obs::Histogram& dispatch_latency = obs::metrics().histogram(
      "eid_executor_dispatch_latency_seconds", obs::dispatch_buckets());
};

ExecutorMetrics& executor_metrics() {
  static ExecutorMetrics metrics;
  return metrics;
}

}  // namespace

/// One worker: a fixed-capacity ring of queued tasks with a single
/// consumer (the worker thread) and mutex-serialized producers, plus a
/// parking condvar. Ring indices are free-running; capacity is plenty for
/// a fan-out (<= n_threads entries) and overflow falls back to running
/// inline at the call site, never blocking or dropping.
struct Executor::Worker {
  static constexpr std::size_t kRing = 256;  // power of two

  std::array<RawTask, kRing> ring{};
  std::atomic<std::size_t> head{0};  ///< consumer cursor
  std::atomic<std::size_t> tail{0};  ///< producer cursor
  std::mutex produce_mutex;          ///< serializes producers
  std::mutex park_mutex;
  std::condition_variable park;
  std::atomic<bool> stop{false};
  /// submit()ted long tasks queued or running here; fan-outs prefer
  /// workers with 0 so a day-sized task never blocks a stage barrier.
  std::atomic<std::int64_t> long_tasks{0};

  bool empty() const {
    return head.load(std::memory_order_relaxed) ==
           tail.load(std::memory_order_acquire);
  }
};

Executor::Executor(std::size_t n_workers) {
  workers_.reserve(n_workers);
  threads_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (std::size_t i = 0; i < n_workers; ++i) {
    detail::thread_spawns.fetch_add(1, std::memory_order_relaxed);
    executor_metrics().spawned.add(1);
    threads_.emplace_back([this, i] { worker_loop(*workers_[i]); });
  }
}

Executor::~Executor() {
  for (auto& worker : workers_) {
    worker->stop.store(true, std::memory_order_relaxed);
    // Lock-then-notify so a worker between its predicate check and its
    // sleep cannot miss the wakeup.
    { std::lock_guard lock(worker->park_mutex); }
    worker->park.notify_one();
  }
  for (std::thread& thread : threads_) thread.join();
}

bool Executor::on_worker_thread() const { return t_worker_of == this; }

void Executor::worker_loop(Worker& worker) {
  t_worker_of = this;
  for (;;) {
    const std::size_t head = worker.head.load(std::memory_order_relaxed);
    if (head != worker.tail.load(std::memory_order_acquire)) {
      const RawTask task = worker.ring[head % Worker::kRing];
      worker.head.store(head + 1, std::memory_order_release);
      const std::int64_t depth =
          queued_.fetch_sub(1, std::memory_order_relaxed) - 1;
      if (task.enqueue_us != 0) {
        ExecutorMetrics& metrics = executor_metrics();
        metrics.queue_depth.set(static_cast<double>(depth));
        metrics.dispatch_latency.observe(
            static_cast<double>(obs::trace_now_us() - task.enqueue_us) * 1e-6);
      }
      task.run(task.ctx, task.arg);
      continue;
    }
    std::unique_lock lock(worker.park_mutex);
    worker.park.wait(lock, [&] {
      return worker.stop.load(std::memory_order_relaxed) || !worker.empty();
    });
    // Drain before exiting: submitted work is never dropped on shutdown.
    if (worker.stop.load(std::memory_order_relaxed) && worker.empty()) return;
  }
}

bool Executor::try_push(Worker& worker, RawTask task) {
  ExecutorMetrics& metrics = executor_metrics();
  // The clock read is the costly part of dispatch timing; only pay it
  // when collection is on (enqueue_us == 0 tells the consumer to skip).
  if (obs::metrics().enabled()) task.enqueue_us = obs::trace_now_us();
  {
    std::lock_guard producers(worker.produce_mutex);
    const std::size_t tail = worker.tail.load(std::memory_order_relaxed);
    if (tail - worker.head.load(std::memory_order_acquire) >= Worker::kRing) {
      return false;
    }
    worker.ring[tail % Worker::kRing] = task;
    worker.tail.store(tail + 1, std::memory_order_release);
  }
  const std::int64_t depth = queued_.fetch_add(1, std::memory_order_relaxed) + 1;
  metrics.queue_depth.set(static_cast<double>(depth));
  { std::lock_guard lock(worker.park_mutex); }
  worker.park.notify_one();
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  metrics.dispatched.add(1);
  return true;
}

void Executor::fan_out_entry(void* ctx, std::size_t range) {
  FanOut& block = *static_cast<FanOut*>(ctx);
  try {
    block.run(block, range);
  } catch (...) {
    std::lock_guard lock(block.mutex);
    if (!block.error) block.error = std::current_exception();
  }
  // Final touch of the block under its mutex: once the caller observes
  // pending == 0 (which it can only do after this unlock), the block may
  // be destroyed.
  std::lock_guard lock(block.mutex);
  if (--block.pending == 0) block.done.notify_all();
}

std::size_t Executor::dispatch_fan_out(FanOut& block, std::size_t count) {
  if (count == 0 || workers_.empty()) return 0;
  // Targets: workers free of long tasks, so a fan-out never queues behind
  // a pipelined day commit; if every worker is busy, use them all (nested
  // work runs inline on workers, so queues always drain — this only costs
  // latency, never liveness).
  std::vector<std::size_t> targets;
  targets.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i]->long_tasks.load(std::memory_order_relaxed) == 0) {
      targets.push_back(i);
    }
  }
  if (targets.empty()) {
    for (std::size_t i = 0; i < workers_.size(); ++i) targets.push_back(i);
  }
  block.pending = count;  // no worker sees the block before its first push
  const std::size_t start =
      next_worker_.fetch_add(1, std::memory_order_relaxed);
  std::size_t queued = 0;
  while (queued < count) {
    Worker& worker = *workers_[targets[(start + queued) % targets.size()]];
    if (!try_push(worker, {&fan_out_entry, &block, queued + 1})) break;
    ++queued;
  }
  if (queued < count) {
    // The caller will run the rest inline; they were never pending.
    std::lock_guard lock(block.mutex);
    block.pending -= count - queued;
  }
  return queued;
}

void Executor::wait_fan_out(FanOut& block) {
  std::unique_lock lock(block.mutex);
  block.done.wait(lock, [&] { return block.pending == 0; });
}

namespace {

struct SubmitCtx {
  std::function<void()> task;
  std::shared_ptr<Executor::TaskHandle::State> state;
  std::atomic<std::int64_t>* long_tasks = nullptr;
};

void run_submit(SubmitCtx& ctx) {
  try {
    ctx.task();
  } catch (...) {
    std::lock_guard lock(ctx.state->mutex);
    ctx.state->error = std::current_exception();
  }
  // Destroy the task — and everything it captured — BEFORE publishing
  // completion: the moment `done` is visible a waiter may drop its own
  // references and even release the executor, and a capture holding the
  // last shared_ptr to the pool would then run ~Executor on this worker
  // thread (self-join). After the signal this worker owns no user state.
  ctx.task = nullptr;
  if (ctx.long_tasks != nullptr) {
    ctx.long_tasks->fetch_sub(1, std::memory_order_relaxed);
    executor_metrics().long_tasks.add(-1.0);
  }
  std::lock_guard lock(ctx.state->mutex);
  ctx.state->done = true;
  ctx.state->cv.notify_all();
}

void submit_entry(void* ctx, std::size_t) {
  std::unique_ptr<SubmitCtx> owned(static_cast<SubmitCtx*>(ctx));
  run_submit(*owned);
}

}  // namespace

Executor::TaskHandle Executor::submit(std::function<void()> task) {
  auto state = std::make_shared<TaskHandle::State>();
  if (workers_.empty() || on_worker_thread()) {
    SubmitCtx ctx{std::move(task), state, nullptr};
    run_submit(ctx);
    return TaskHandle(std::move(state));
  }
  // Least long-loaded worker, round-robin tiebreak.
  const std::size_t start =
      next_worker_.fetch_add(1, std::memory_order_relaxed);
  std::size_t best = start % workers_.size();
  std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const std::size_t w = (start + i) % workers_.size();
    const std::int64_t load =
        workers_[w]->long_tasks.load(std::memory_order_relaxed);
    if (load < best_load) {
      best_load = load;
      best = w;
    }
  }
  Worker& worker = *workers_[best];
  worker.long_tasks.fetch_add(1, std::memory_order_relaxed);
  executor_metrics().long_tasks.add(1.0);
  auto* ctx = new SubmitCtx{std::move(task), state, &worker.long_tasks};
  if (!try_push(worker, {&submit_entry, ctx, 0})) {
    std::unique_ptr<SubmitCtx> owned(ctx);
    owned->long_tasks = nullptr;
    worker.long_tasks.fetch_sub(1, std::memory_order_relaxed);
    executor_metrics().long_tasks.add(-1.0);
    run_submit(*owned);
  }
  return TaskHandle(std::move(state));
}

}  // namespace eid::util
