// Deterministic random number generation for simulation.
//
// Everything in the simulator is driven by this generator so that a scenario
// seed reproduces a bit-identical log stream. The engine is xoshiro256++
// seeded through splitmix64 (the construction recommended by the xoshiro
// authors); distributions are implemented locally rather than via <random>
// so that output is identical across standard-library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace eid::util {

/// splitmix64 step; used for seeding and cheap hashing of ids into streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic, seedable RNG (xoshiro256++).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : seed_(seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent stream, e.g. one per host or per campaign.
  /// Depends only on the seed and stream id, not on how much of the parent
  /// stream has been consumed — simulation components stay decoupled.
  Rng fork(std::uint64_t stream_id) const {
    std::uint64_t sm = seed_ ^ (stream_id * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(sm));
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Requires n > 0. Uses rejection to avoid modulo bias.
  std::uint64_t uniform(std::uint64_t n) {
    const std::uint64_t threshold = -n % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform_double();
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform_double() < p; }

  /// Exponentially distributed inter-arrival time with the given mean.
  double exponential(double mean) {
    double u = uniform_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (one value per call; simple, deterministic).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  /// Geometric-ish heavy-tailed integer >= 1 via inverse power law (Zipf tail).
  /// Used for popularity ranks: P(X = k) ~ k^-alpha over [1, n].
  std::size_t zipf(std::size_t n, double alpha);

  /// Random element index for a non-empty container size.
  std::size_t index(std::size_t size) { return static_cast<std::size_t>(uniform(size)); }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t seed_ = 0;
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace eid::util
