// String interning: the graph and feature layers work on dense uint32 ids
// for hosts and domains; strings only live at the log/simulator boundary.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace eid::util {

/// Dense id assigned by an Interner. 0 is a valid id.
using InternId = std::uint32_t;

inline constexpr InternId kInvalidInternId = 0xffffffffu;

/// Bidirectional string <-> dense-id map. Not thread-safe; the pipeline is
/// single-threaded per day, matching the daily batch model of the paper.
class Interner {
 public:
  /// Id for the string, inserting it if new.
  InternId intern(std::string_view text) {
    auto it = ids_.find(std::string(text));
    if (it != ids_.end()) return it->second;
    const InternId id = static_cast<InternId>(strings_.size());
    strings_.emplace_back(text);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Id for the string if already interned, kInvalidInternId otherwise.
  InternId find(std::string_view text) const {
    auto it = ids_.find(std::string(text));
    return it == ids_.end() ? kInvalidInternId : it->second;
  }

  /// String for an id. Requires id < size().
  const std::string& name(InternId id) const { return strings_[id]; }

  std::size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, InternId> ids_;
  std::vector<std::string> strings_;
};

}  // namespace eid::util
