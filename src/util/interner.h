// String interning: the graph and feature layers work on dense uint32 ids
// for hosts and domains; strings only live at the log/simulator boundary.
// Lookups are heterogeneous (string_view probes an owned-string table
// without materializing a temporary std::string), so the per-event hot
// path never allocates for already-seen names. ShardInterner + the merge
// path let independently built shards reproduce, bit for bit, the id
// assignment one sequential Interner would have produced.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace eid::util {

/// Dense id assigned by an Interner. 0 is a valid id.
using InternId = std::uint32_t;

inline constexpr InternId kInvalidInternId = 0xffffffffu;

/// Transparent string hashing: lets unordered containers keyed by
/// std::string be probed with a string_view, so lookups on the per-event
/// hot path stop constructing temporary strings.
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view text) const noexcept {
    return std::hash<std::string_view>{}(text);
  }
  std::size_t operator()(const std::string& text) const noexcept {
    return std::hash<std::string_view>{}(std::string_view(text));
  }
};

/// Map keyed by owned strings but probed allocation-free with views.
template <typename Value>
using TransparentStringMap =
    std::unordered_map<std::string, Value, TransparentStringHash,
                       std::equal_to<>>;

/// Set of owned strings probed allocation-free with views.
using TransparentStringSet =
    std::unordered_set<std::string, TransparentStringHash, std::equal_to<>>;

/// Bidirectional string <-> dense-id map. Not thread-safe; one day path
/// builds on one thread (or on independent shards — see ShardInterner).
class Interner {
 public:
  Interner() = default;
  Interner(Interner&&) = default;
  Interner& operator=(Interner&&) = default;
  // The id -> name table points into the map's (address-stable) keys, so
  // copies must rebuild it against their own map.
  Interner(const Interner& other) : ids_(other.ids_) { rebuild_names(); }
  Interner& operator=(const Interner& other) {
    if (this != &other) {
      ids_ = other.ids_;
      rebuild_names();
    }
    return *this;
  }

  /// Id for the string, inserting it if new. Allocates only on first sight.
  InternId intern(std::string_view text) {
    if (const auto it = ids_.find(text); it != ids_.end()) return it->second;
    const InternId id = static_cast<InternId>(names_.size());
    const auto [it, inserted] = ids_.emplace(text, id);
    names_.push_back(&it->first);
    return id;
  }

  /// Id for the string if already interned, kInvalidInternId otherwise.
  /// Allocation-free.
  InternId find(std::string_view text) const {
    const auto it = ids_.find(text);
    return it == ids_.end() ? kInvalidInternId : it->second;
  }

  /// String for an id. Requires id < size().
  const std::string& name(InternId id) const { return *names_[id]; }

  std::size_t size() const { return names_.size(); }

  /// Pre-size for n strings (bulk restore paths).
  void reserve(std::size_t n) {
    ids_.reserve(n);
    names_.reserve(n);
  }

 private:
  void rebuild_names() {
    names_.assign(ids_.size(), nullptr);
    for (const auto& [text, id] : ids_) names_[id] = &text;
  }

  TransparentStringMap<InternId> ids_;
  std::vector<const std::string*> names_;  ///< id -> key in ids_
};

/// One shard of a sharded interner: interns locally while recording the
/// global arrival sequence of every string's first appearance, so
/// independently built shards can later be merged into exactly the id
/// assignment a single sequential Interner scanning the whole stream
/// would have produced. `seq` must be non-decreasing per shard (it is the
/// position of the event in the global stream).
class ShardInterner {
 public:
  /// Local id for the string, inserting it (tagged with `seq`) if new.
  InternId intern(std::string_view text, std::uint64_t seq) {
    const InternId id = interner_.intern(text);
    // Ids are dense, so a fresh insertion is exactly the id one past the
    // seqs recorded so far.
    if (id == first_seq_.size()) first_seq_.push_back(seq);
    return id;
  }

  /// Local id if present, kInvalidInternId otherwise. Allocation-free.
  InternId find(std::string_view text) const { return interner_.find(text); }

  const std::string& name(InternId id) const { return interner_.name(id); }

  /// Global stream position of the string's first appearance in this shard.
  std::uint64_t first_seq(InternId id) const { return first_seq_[id]; }

  std::size_t size() const { return interner_.size(); }

 private:
  Interner interner_;  ///< owns copy-safety of the id -> name table
  std::vector<std::uint64_t> first_seq_;  ///< by local id
};

/// Result of merging shard interners: the global interner plus, per shard,
/// the local-id -> global-id remap table.
struct InternerMerge {
  Interner interner;
  std::vector<std::vector<InternId>> to_global;  ///< [shard][local id]
};

/// Merge shard interners into a global id space ordered by first global
/// appearance (ascending first_seq): bit-identical to interning the
/// original stream sequentially, for any shard count or routing.
InternerMerge merge_interners(std::span<const ShardInterner* const> shards);

/// N independent shard interners plus the deterministic merge — the
/// convenience owner for builders that shard a stream by key hash. Each
/// shard may be filled from its own thread (shards share no state); the
/// merge runs after all shards are complete.
class ShardedInterner {
 public:
  explicit ShardedInterner(std::size_t n_shards)
      : shards_(n_shards == 0 ? 1 : n_shards) {}

  std::size_t shard_count() const { return shards_.size(); }
  ShardInterner& shard(std::size_t i) { return shards_[i]; }
  const ShardInterner& shard(std::size_t i) const { return shards_[i]; }

  /// Merge all shards (see merge_interners).
  InternerMerge merge() const;

 private:
  std::vector<ShardInterner> shards_;
};

}  // namespace eid::util
