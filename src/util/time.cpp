#include "util/time.h"

#include <cstdio>

namespace eid::util {

Day days_from_civil(CivilDate date) {
  int y = date.year;
  const unsigned m = static_cast<unsigned>(date.month);
  const unsigned d = static_cast<unsigned>(date.day);
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<Day>(era) * 146097 + static_cast<Day>(doe) - 719468;
}

CivilDate civil_from_days(Day day) {
  Day z = day + 719468;
  const Day era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const Day y = static_cast<Day>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d)};
}

TimePoint make_time(int year, int month, int day, int hour, int minute, int second) {
  return day_start(make_day(year, month, day)) + hour * kSecondsPerHour +
         minute * kSecondsPerMinute + second;
}

std::string format_day(Day day) {
  const CivilDate c = civil_from_days(day);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::string format_time(TimePoint t) {
  const CivilDate c = civil_from_days(day_of(t));
  const std::int64_t s = seconds_into_day(t);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02lld:%02lld:%02lldZ", c.year,
                c.month, c.day, static_cast<long long>(s / kSecondsPerHour),
                static_cast<long long>((s / kSecondsPerMinute) % 60),
                static_cast<long long>(s % 60));
  return buf;
}

bool parse_day(const std::string& text, Day& out) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) return false;
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  out = make_day(y, m, d);
  return true;
}

bool parse_time(const std::string& text, TimePoint& out) {
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, s = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%dT%d:%d:%d", &y, &mo, &d, &h, &mi, &s) != 6)
    return false;
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 || mi > 59 ||
      s < 0 || s > 60)
    return false;
  out = make_time(y, mo, d, h, mi, s);
  return true;
}

}  // namespace eid::util
