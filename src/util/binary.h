// Little-endian binary encoding primitives for the storage container
// format: LEB128 varints (counts and string-table ids are small, so they
// mostly fit one byte), fixed-width integers, and bit-exact doubles
// (bit_cast through u64, so model weights round-trip exactly — the
// checkpoint contract is bit-identical restored reports). ByteWriter
// appends to a growable buffer; ByteReader is a bounds-checked cursor over
// caller-owned bytes that turns every truncation into a clean `false`
// instead of undefined behavior on corrupt input.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace eid::util {

/// Append-only encoder. All integers little-endian, varints LEB128.
class ByteWriter {
 public:
  /// Pre-size the backing buffer (hot encode paths know their output size
  /// to within a few bytes; growing a multi-MB buffer in doublings is
  /// measurable).
  void reserve(std::size_t bytes) { buffer_.reserve(bytes); }

  void u8(std::uint8_t value) { buffer_.push_back(static_cast<char>(value)); }

  void u32le(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(value >> (8 * i)));
  }

  void u64le(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(value >> (8 * i)));
  }

  /// Unsigned LEB128: 7 value bits per byte, high bit = continuation.
  void varint(std::uint64_t value) {
    while (value >= 0x80) {
      u8(static_cast<std::uint8_t>(value) | 0x80u);
      value >>= 7;
    }
    u8(static_cast<std::uint8_t>(value));
  }

  /// Bit-exact double (IEEE-754 bits through u64le).
  void f64(double value) { u64le(std::bit_cast<std::uint64_t>(value)); }

  void bytes(std::string_view data) { buffer_.append(data); }

  /// Length-prefixed string: varint size + raw bytes.
  void str(std::string_view text) {
    varint(text.size());
    bytes(text);
  }

  std::size_t size() const { return buffer_.size(); }
  const std::string& data() const { return buffer_; }
  std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked decoder over caller-owned bytes. Every accessor returns
/// false (and consumes nothing further) on truncated input; once a read
/// fails, ok() stays false.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& out) {
    if (!need(1)) return false;
    out = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool u32le(std::uint32_t& out) {
    if (!need(4)) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool u64le(std::uint64_t& out) {
    if (!need(8)) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool varint(std::uint64_t& out) {
    out = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      std::uint8_t byte = 0;
      if (!u8(byte)) return false;
      out |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
      if ((byte & 0x80u) == 0) {
        // Reject non-canonical 10-byte encodings that would overflow.
        if (shift == 63 && byte > 1) return fail();
        return true;
      }
    }
    return fail();  // continuation bit set past 64 value bits
  }

  bool f64(double& out) {
    std::uint64_t bits = 0;
    if (!u64le(bits)) return false;
    out = std::bit_cast<double>(bits);
    return true;
  }

  /// View of the next `n` raw bytes (no copy; valid while the underlying
  /// buffer lives).
  bool bytes(std::size_t n, std::string_view& out) {
    if (!need(n)) return false;
    out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  /// Length-prefixed string as a view into the underlying buffer.
  bool str(std::string_view& out) {
    std::uint64_t size = 0;
    if (!varint(size)) return false;
    if (size > remaining()) return fail();
    return bytes(static_cast<std::size_t>(size), out);
  }

  bool skip(std::size_t n) {
    if (!need(n)) return false;
    pos_ += n;
    return true;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  bool need(std::size_t n) { return remaining() >= n ? true : fail(); }
  bool fail() {
    ok_ = false;
    return false;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace eid::util
