// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the per-section integrity
// check of the storage container format. Month-scale profile checkpoints
// are rewritten daily on commodity disks; a flipped bit in a history file
// must surface as a clean load failure, never as a silently poisoned
// detector state.
#pragma once

#include <cstdint>
#include <string_view>

namespace eid::util {

/// CRC-32 of `data`, continuing from `crc` (pass the previous return value
/// to checksum a buffer in pieces; the default starts a fresh checksum).
std::uint32_t crc32(std::string_view data, std::uint32_t crc = 0);

}  // namespace eid::util
