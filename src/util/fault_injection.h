// Process-wide fault-injection seam for the durability paths. Production
// code probes the singleton at each I/O decision point (file open, bulk
// read, bulk write, tmp->final rename, delta-chain append, tail open/read);
// tests arm one-shot or repeating fault plans to simulate exactly what a
// crash, a flaky disk or a half-written log leaves behind:
//
//   * FailOpen   — the open reports failure (EINTR / transient EACCES);
//   * FailOp     — the read/write reports failure with nothing transferred;
//   * TornWrite  — only the first `byte` bytes land, then the op "dies"
//                  (what a power loss mid-write leaves on disk);
//   * ShortRead  — only the first `byte` bytes come back, silently (a read
//                  racing a writer, or a file truncated under the reader);
//   * BitFlip    — bit `bit` of byte `byte` flips in the data read (media
//                  corruption the per-section CRCs must catch);
//   * SkipRename — the tmp file is fully written but the rename never
//                  happens (crash in the window between write and rename).
//
// Disabled cost is one relaxed atomic load per probe — the seam stays
// compiled into release binaries so the crash-recovery CI smoke and the
// state_tool can exercise it without a special build.
//
// Arming/resetting is test-only and mutex-serialized; probes from I/O
// threads take the same mutex only while at least one plan is armed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace eid::util {

enum class FaultPoint : std::uint8_t {
  StorageOpenRead = 0,  ///< storage::read_file open
  StorageRead,          ///< storage::read_file bulk read
  StorageOpenWrite,     ///< storage::write_file_atomic / chain-append open
  StorageWrite,         ///< storage::write_file_atomic bulk write (tmp file)
  StorageRename,        ///< storage::write_file_atomic tmp->final rename
  StorageAppend,        ///< storage delta-chain frame append
  TailOpen,             ///< TsvFileSource (re)open
  TailRead,             ///< TsvFileSource tail-mode poll read
  kCount,
};

constexpr const char* fault_point_name(FaultPoint point) {
  switch (point) {
    case FaultPoint::StorageOpenRead: return "storage-open-read";
    case FaultPoint::StorageRead: return "storage-read";
    case FaultPoint::StorageOpenWrite: return "storage-open-write";
    case FaultPoint::StorageWrite: return "storage-write";
    case FaultPoint::StorageRename: return "storage-rename";
    case FaultPoint::StorageAppend: return "storage-append";
    case FaultPoint::TailOpen: return "tail-open";
    case FaultPoint::TailRead: return "tail-read";
    case FaultPoint::kCount: break;
  }
  return "unknown";
}

enum class FaultAction : std::uint8_t {
  None = 0,
  FailOpen,
  FailOp,
  TornWrite,
  ShortRead,
  BitFlip,
  SkipRename,
};

class FaultInjector {
 public:
  /// The process-wide instance every probe site consults.
  static FaultInjector& instance();

  /// Arm `point`: after `skip` matching probes pass through unaffected,
  /// the next `repeat` matching probes trigger `action`. `byte` is the
  /// boundary for TornWrite/ShortRead (bytes that survive) and the target
  /// byte for BitFlip; `bit` selects the flipped bit (0-7). Re-arming a
  /// point replaces its previous plan.
  void arm(FaultPoint point, FaultAction action, std::uint64_t skip = 0,
           std::uint64_t byte = 0, unsigned bit = 0, std::uint64_t repeat = 1);

  /// Disarm every point and zero the trigger counters.
  void reset();

  /// Times an armed plan fired at this point since the last reset().
  std::uint64_t triggered(FaultPoint point) const;

  /// Fast gate for probe sites: false means every probe is a no-op.
  bool any_armed() const {
    return armed_.load(std::memory_order_relaxed) > 0;
  }

  // ---- Probes (called from production I/O paths) ----

  /// True when an armed FailOpen plan says this open must fail.
  bool fail_open(FaultPoint point);

  /// Bytes (of `n`) that actually land; sets `fail` when the operation
  /// must report an error afterwards (FailOp => 0 bytes + fail,
  /// TornWrite => `byte` bytes + fail).
  std::size_t filter_write(FaultPoint point, std::size_t n, bool& fail);

  /// Mutate the bytes a read produced: ShortRead truncates, BitFlip
  /// corrupts in place; FailOp sets `fail` (caller must report an error).
  void filter_read(FaultPoint point, std::string& bytes, bool& fail);

  /// True when an armed SkipRename plan says the rename must be skipped
  /// (the caller leaves the tmp file and reports failure, exactly like a
  /// crash between write and rename).
  bool skip_rename(FaultPoint point);

 private:
  struct Plan {
    FaultAction action = FaultAction::None;
    std::uint64_t skip = 0;
    std::uint64_t byte = 0;
    unsigned bit = 0;
    std::uint64_t repeat = 0;
  };

  FaultInjector() = default;

  /// Consume one matching probe under the lock: skips count down first,
  /// then `repeat` triggers fire. Returns the plan that fired, if any.
  bool consume(FaultPoint point, bool (*matches)(FaultAction), Plan& fired);

  mutable std::mutex mutex_;
  std::atomic<std::size_t> armed_{0};
  Plan plans_[static_cast<std::size_t>(FaultPoint::kCount)];
  std::uint64_t triggered_[static_cast<std::size_t>(FaultPoint::kCount)] = {};
};

}  // namespace eid::util
