// Deterministic data-parallel scaffolding for the day-analysis stages.
// Work is partitioned into contiguous ranges whose boundaries depend only
// on (n, n_threads) — never on scheduling — so any computation that writes
// results into per-range (or per-index) slots is bit-identical for every
// thread count, the contract the whole parallel engine is built on.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace eid::util {

namespace detail {

/// Every std::thread this module ever constructs (parallel_ranges spawns
/// + Executor workers) — the observable tests use to prove the persistent
/// pool eliminated per-day thread construction.
inline std::atomic<std::uint64_t> thread_spawns{0};

/// The one source of truth for the partition of [0, n) into contiguous
/// ranges: both the fan-out and range_count derive from it, so per-range
/// slot arrays sized with range_count can never be out-of-sync with the
/// range indices the fan-out writes.
struct RangePartition {
  std::size_t chunk = 0;   ///< items per range (last may be short)
  std::size_t ranges = 0;  ///< number of non-empty ranges
};

inline RangePartition partition_ranges(std::size_t n, std::size_t n_threads) {
  if (n == 0) return {0, 0};
  const std::size_t workers = std::min(std::max<std::size_t>(n_threads, 1), n);
  const std::size_t chunk = (n + workers - 1) / workers;
  return {chunk, (n + chunk - 1) / chunk};
}

}  // namespace detail

/// Run fn(range_index, begin, end) over [0, n) split into up to n_threads
/// contiguous ranges, each on its own std::thread. fn must only touch
/// state owned by its range (no locks needed, none taken). n_threads <= 1,
/// or n < 2, degrades to one inline call. range_index is dense from 0 and
/// there are exactly range_count(n, n_threads) ranges.
template <typename Fn>
void parallel_ranges(std::size_t n, std::size_t n_threads, Fn&& fn) {
  const auto [chunk, ranges] = detail::partition_ranges(n, n_threads);
  if (ranges == 0) return;
  if (ranges == 1) {
    fn(std::size_t{0}, std::size_t{0}, n);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(ranges - 1);
  detail::thread_spawns.fetch_add(ranges - 1, std::memory_order_relaxed);
  for (std::size_t w = 1; w < ranges; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    pool.emplace_back([&fn, w, begin, end] { fn(w, begin, end); });
  }
  // The calling thread takes range 0 instead of idling in join — one
  // fewer spawn per region and no wasted execution context.
  fn(std::size_t{0}, std::size_t{0}, chunk);
  for (std::thread& worker : pool) worker.join();
}

/// Number of ranges parallel_ranges(n, n_threads, ...) will invoke —
/// size per-range result slots with this before fanning out.
inline std::size_t range_count(std::size_t n, std::size_t n_threads) {
  return detail::partition_ranges(n, n_threads).ranges;
}

/// Monotonic count of threads this process constructed for parallel work
/// (fan-out spawns and util::Executor workers alike). In steady state —
/// an executor wired through every stage — this must stay flat across
/// days; tests/determinism_test.cpp asserts it.
inline std::uint64_t thread_spawn_count() {
  return detail::thread_spawns.load(std::memory_order_relaxed);
}

}  // namespace eid::util
