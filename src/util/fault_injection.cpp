#include "util/fault_injection.h"

namespace eid::util {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(FaultPoint point, FaultAction action,
                        std::uint64_t skip, std::uint64_t byte, unsigned bit,
                        std::uint64_t repeat) {
  const auto slot = static_cast<std::size_t>(point);
  std::lock_guard<std::mutex> lock(mutex_);
  if (plans_[slot].action == FaultAction::None &&
      action != FaultAction::None) {
    armed_.fetch_add(1, std::memory_order_relaxed);
  } else if (plans_[slot].action != FaultAction::None &&
             action == FaultAction::None) {
    armed_.fetch_sub(1, std::memory_order_relaxed);
  }
  plans_[slot] = Plan{action, skip, byte, bit % 8, repeat};
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Plan& plan : plans_) plan = Plan{};
  for (std::uint64_t& count : triggered_) count = 0;
  armed_.store(0, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::triggered(FaultPoint point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return triggered_[static_cast<std::size_t>(point)];
}

bool FaultInjector::consume(FaultPoint point, bool (*matches)(FaultAction),
                            Plan& fired) {
  const auto slot = static_cast<std::size_t>(point);
  std::lock_guard<std::mutex> lock(mutex_);
  Plan& plan = plans_[slot];
  if (plan.action == FaultAction::None || !matches(plan.action)) return false;
  if (plan.skip > 0) {
    --plan.skip;
    return false;
  }
  fired = plan;
  ++triggered_[slot];
  if (--plan.repeat == 0) {
    plan = Plan{};
    armed_.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

bool FaultInjector::fail_open(FaultPoint point) {
  if (!any_armed()) return false;
  Plan fired;
  return consume(
      point, [](FaultAction a) { return a == FaultAction::FailOpen; }, fired);
}

std::size_t FaultInjector::filter_write(FaultPoint point, std::size_t n,
                                        bool& fail) {
  if (!any_armed()) return n;
  Plan fired;
  const bool hit = consume(
      point,
      [](FaultAction a) {
        return a == FaultAction::FailOp || a == FaultAction::TornWrite;
      },
      fired);
  if (!hit) return n;
  fail = true;
  if (fired.action == FaultAction::FailOp) return 0;
  return static_cast<std::size_t>(fired.byte) < n
             ? static_cast<std::size_t>(fired.byte)
             : n;
}

void FaultInjector::filter_read(FaultPoint point, std::string& bytes,
                                bool& fail) {
  if (!any_armed()) return;
  Plan fired;
  const bool hit = consume(
      point,
      [](FaultAction a) {
        return a == FaultAction::FailOp || a == FaultAction::ShortRead ||
               a == FaultAction::BitFlip;
      },
      fired);
  if (!hit) return;
  switch (fired.action) {
    case FaultAction::FailOp:
      fail = true;
      break;
    case FaultAction::ShortRead:
      if (fired.byte < bytes.size()) {
        bytes.resize(static_cast<std::size_t>(fired.byte));
      }
      break;
    case FaultAction::BitFlip:
      if (fired.byte < bytes.size()) {
        bytes[static_cast<std::size_t>(fired.byte)] = static_cast<char>(
            static_cast<unsigned char>(bytes[static_cast<std::size_t>(
                fired.byte)]) ^
            (1u << fired.bit));
      }
      break;
    default:
      break;
  }
}

bool FaultInjector::skip_rename(FaultPoint point) {
  if (!any_armed()) return false;
  Plan fired;
  return consume(
      point, [](FaultAction a) { return a == FaultAction::SkipRename; },
      fired);
}

}  // namespace eid::util
