#include "util/rng.h"

#include <unordered_set>

namespace eid::util {

std::size_t Rng::zipf(std::size_t n, double alpha) {
  // Rejection-inversion would be faster for huge n; the simulator draws from
  // universes of at most a few hundred thousand domains, where simple
  // inversion on the harmonic CDF approximation is accurate enough and
  // deterministic. We approximate the normalizing constant with the
  // continuous integral, then clamp.
  if (n <= 1) return 1;
  const double a = alpha == 1.0 ? 1.0000001 : alpha;
  const double h = (std::pow(static_cast<double>(n), 1.0 - a) - 1.0) / (1.0 - a);
  const double u = uniform_double();
  const double x = std::pow(u * h * (1.0 - a) + 1.0, 1.0 / (1.0 - a));
  auto k = static_cast<std::size_t>(x);
  if (k < 1) k = 1;
  if (k > n) k = n;
  return k;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> out;
  if (k >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    shuffle(out);
    return out;
  }
  out.reserve(k);
  std::unordered_set<std::size_t> seen;
  while (out.size() < k) {
    const std::size_t candidate = index(n);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace eid::util
