// Minimal dense linear algebra for the regression models. The paper trains
// two small linear models (6 and 8 features), so an O(p^3) Cholesky on the
// normal equations is exact and fast; no external BLAS is needed.
#pragma once

#include <cstddef>
#include <vector>

namespace eid::ml {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// this^T * this  (the Gram matrix X'X).
  Matrix gram() const;

  /// this^T * v for a vector with rows() entries.
  std::vector<double> transpose_times(const std::vector<double>& v) const;

  /// this * v for a vector with cols() entries.
  std::vector<double> times(const std::vector<double>& v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorization of a symmetric positive-definite matrix; returns
/// false if the matrix is not (numerically) positive definite.
/// On success `lower` holds L with A = L L^T.
bool cholesky(const Matrix& a, Matrix& lower);

/// Solve A x = b given the Cholesky factor L of A.
std::vector<double> cholesky_solve(const Matrix& lower, const std::vector<double>& b);

/// Inverse of an SPD matrix via its Cholesky factor (used for coefficient
/// standard errors, which need diag((X'X)^-1)).
Matrix spd_inverse(const Matrix& lower);

}  // namespace eid::ml
