// Ordinary least squares with per-coefficient significance — the stand-in
// for the R `lm` fit the paper uses to weight the C&C and domain-similarity
// features (§IV-C, §IV-D). The paper inspects coefficient signs (DomAge is
// negatively correlated with reported domains) and drops low-significance
// features (AutoHosts, IP16); both workflows are supported here through the
// t-statistics.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "ml/matrix.h"

namespace eid::ml {

/// A fitted linear model y ~ intercept + X * weights.
struct LinearModel {
  double intercept = 0.0;
  std::vector<double> weights;      ///< one per feature
  std::vector<double> std_errors;   ///< std error per weight (intercept last)
  std::vector<double> t_stats;      ///< weight / std_error
  double intercept_std_error = 0.0;
  double r_squared = 0.0;
  double residual_variance = 0.0;
  std::size_t n_samples = 0;

  /// Predicted score for one feature row.
  double predict(std::span<const double> features) const;

  /// |t| >= threshold, the paper's informal "significant" cut. Index is the
  /// feature position.
  bool is_significant(std::size_t feature, double t_threshold = 2.0) const;
};

/// Fit OLS via normal equations + Cholesky. `x` is n x p, `y` has n entries.
/// A tiny ridge (`lambda`) is added only if X'X is numerically singular
/// (e.g. a constant feature column), so well-posed fits are exact OLS.
/// Requires n > p. Returns the fitted model.
LinearModel fit_linear_regression(const Matrix& x, std::span<const double> y,
                                  double fallback_ridge = 1e-8);

/// Feature scaling to [0, 1] per column, fitted on training data; the paper's
/// domain scores live on a bounded scale so thresholds like 0.4 are
/// comparable across features.
class MinMaxScaler {
 public:
  /// Learn per-column min/max. Constant columns map to 0.5.
  void fit(const Matrix& x);

  /// Scale a matrix (same column count as fitted).
  Matrix transform(const Matrix& x) const;

  /// Scale one row in place.
  void transform_row(std::span<double> row) const;

  std::size_t n_features() const { return mins_.size(); }

  /// Fitted bounds (persistence).
  const std::vector<double>& mins() const { return mins_; }
  const std::vector<double>& maxs() const { return maxs_; }

  /// Restore from persisted bounds. Vectors must be the same length.
  void restore(std::vector<double> mins, std::vector<double> maxs) {
    mins_ = std::move(mins);
    maxs_ = std::move(maxs);
  }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace eid::ml
