#include "ml/linreg.h"

#include <algorithm>
#include <cmath>

namespace eid::ml {

double LinearModel::predict(std::span<const double> features) const {
  double acc = intercept;
  const std::size_t p = std::min(features.size(), weights.size());
  for (std::size_t i = 0; i < p; ++i) acc += weights[i] * features[i];
  return acc;
}

bool LinearModel::is_significant(std::size_t feature, double t_threshold) const {
  if (feature >= t_stats.size()) return false;
  return std::abs(t_stats[feature]) >= t_threshold;
}

LinearModel fit_linear_regression(const Matrix& x, std::span<const double> y,
                                  double fallback_ridge) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  LinearModel model;
  model.n_samples = n;
  if (n == 0 || n <= p) return model;

  // Design matrix with an intercept column appended.
  Matrix design(n, p + 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < p; ++c) design.at(r, c) = x.at(r, c);
    design.at(r, p) = 1.0;
  }

  Matrix gram = design.gram();
  std::vector<double> yvec(y.begin(), y.end());
  const std::vector<double> xty = design.transpose_times(yvec);

  Matrix lower;
  if (!cholesky(gram, lower)) {
    for (std::size_t i = 0; i <= p; ++i) gram.at(i, i) += fallback_ridge;
    if (!cholesky(gram, lower)) return model;  // hopeless input
  }
  const std::vector<double> beta = cholesky_solve(lower, xty);

  model.weights.assign(beta.begin(), beta.begin() + static_cast<long>(p));
  model.intercept = beta[p];

  // Residual variance and R^2.
  const std::vector<double> fitted = design.times(beta);
  double ss_res = 0.0;
  double mean_y = 0.0;
  for (const double v : yvec) mean_y += v;
  mean_y /= static_cast<double>(n);
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = yvec[i] - fitted[i];
    ss_res += r * r;
    ss_tot += (yvec[i] - mean_y) * (yvec[i] - mean_y);
  }
  const std::size_t dof = n - (p + 1);
  model.residual_variance = dof > 0 ? ss_res / static_cast<double>(dof) : 0.0;
  model.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;

  const Matrix inv = spd_inverse(lower);
  model.std_errors.resize(p);
  model.t_stats.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    model.std_errors[i] = std::sqrt(std::max(0.0, model.residual_variance * inv.at(i, i)));
    model.t_stats[i] =
        model.std_errors[i] > 0.0 ? model.weights[i] / model.std_errors[i] : 0.0;
  }
  model.intercept_std_error =
      std::sqrt(std::max(0.0, model.residual_variance * inv.at(p, p)));
  return model;
}

void MinMaxScaler::fit(const Matrix& x) {
  const std::size_t p = x.cols();
  mins_.assign(p, 0.0);
  maxs_.assign(p, 0.0);
  for (std::size_t c = 0; c < p; ++c) {
    double lo = x.rows() > 0 ? x.at(0, c) : 0.0;
    double hi = lo;
    for (std::size_t r = 1; r < x.rows(); ++r) {
      lo = std::min(lo, x.at(r, c));
      hi = std::max(hi, x.at(r, c));
    }
    mins_[c] = lo;
    maxs_[c] = hi;
  }
}

Matrix MinMaxScaler::transform(const Matrix& x) const {
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double range = maxs_[c] - mins_[c];
      out.at(r, c) = range > 0.0
                         ? std::clamp((x.at(r, c) - mins_[c]) / range, 0.0, 1.0)
                         : 0.5;
    }
  }
  return out;
}

void MinMaxScaler::transform_row(std::span<double> row) const {
  for (std::size_t c = 0; c < row.size() && c < mins_.size(); ++c) {
    const double range = maxs_[c] - mins_[c];
    row[c] = range > 0.0 ? std::clamp((row[c] - mins_[c]) / range, 0.0, 1.0) : 0.5;
  }
}

}  // namespace eid::ml
