#include "ml/matrix.h"

#include <cmath>

namespace eid::ml {

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      double acc = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) acc += at(r, i) * at(r, j);
      g.at(i, j) = acc;
      g.at(j, i) = acc;
    }
  }
  return g;
}

std::vector<double> Matrix::transpose_times(const std::vector<double>& v) const {
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out[c] += at(r, c) * v[r];
  }
  return out;
}

std::vector<double> Matrix::times(const std::vector<double>& v) const {
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += at(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

bool cholesky(const Matrix& a, Matrix& lower) {
  const std::size_t n = a.rows();
  lower = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= lower.at(i, k) * lower.at(j, k);
      if (i == j) {
        if (acc <= 0.0) return false;
        lower.at(i, i) = std::sqrt(acc);
      } else {
        lower.at(i, j) = acc / lower.at(j, j);
      }
    }
  }
  return true;
}

std::vector<double> cholesky_solve(const Matrix& lower,
                                   const std::vector<double>& b) {
  const std::size_t n = lower.rows();
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= lower.at(i, k) * y[k];
    y[i] = acc / lower.at(i, i);
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = y[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= lower.at(k, i) * x[k];
    x[i] = acc / lower.at(i, i);
  }
  return x;
}

Matrix spd_inverse(const Matrix& lower) {
  const std::size_t n = lower.rows();
  Matrix inv(n, n);
  std::vector<double> unit(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    unit.assign(n, 0.0);
    unit[c] = 1.0;
    const auto column = cholesky_solve(lower, unit);
    for (std::size_t r = 0; r < n; ++r) inv.at(r, c) = column[r];
  }
  return inv;
}

}  // namespace eid::ml
