// The six features of the C&C communication detector (§IV-C):
//   NoHosts      domain connectivity (distinct hosts contacting the domain)
//   AutoHosts    hosts with automated connections to the domain
//   NoRef        fraction of hosts contacting the domain with no web referer
//   RareUA       fraction of hosts using no UA or only rare UAs on the edge
//   DomAge       days since WHOIS registration
//   DomValidity  days until the registration expires
// NoRef/RareUA are only meaningful for proxy-derived data; for DNS-derived
// events they evaluate to 0, matching the reduced feature set the paper
// uses on LANL (§V-B).
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "features/automation.h"
#include "features/whois_source.h"
#include "graph/day_graph.h"
#include "profile/ua_history.h"

namespace eid::features {

inline constexpr std::size_t kCcFeatureCount = 6;

inline constexpr std::array<const char*, kCcFeatureCount> kCcFeatureNames = {
    "NoHosts", "AutoHosts", "NoRef", "RareUA", "DomAge", "DomValidity"};

/// One feature row for a rare automated domain.
struct CcFeatureRow {
  graph::DomainId domain = 0;
  double no_hosts = 0.0;
  double auto_hosts = 0.0;
  double no_ref = 0.0;
  double rare_ua = 0.0;
  double dom_age = 0.0;
  double dom_validity = 0.0;
  bool whois_resolved = false;

  std::array<double, kCcFeatureCount> as_array() const {
    return {no_hosts, auto_hosts, no_ref, rare_ua, dom_age, dom_validity};
  }
};

/// True when every request the host made to the domain carried no UA or a
/// rare UA (per the enterprise UA history). Exposed for testing.
bool host_uses_rare_ua(const graph::EdgeData& edge, const graph::DayGraph& graph,
                       const profile::UaHistory& ua_history);

/// Extract the C&C feature row for one domain.
CcFeatureRow extract_cc_features(const graph::DayGraph& graph,
                                 graph::DomainId domain,
                                 const AutomationAnalysis& automation,
                                 const profile::UaHistory& ua_history,
                                 const WhoisSource& whois, util::Day today,
                                 const WhoisDefaults& defaults);

}  // namespace eid::features
