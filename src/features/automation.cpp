#include "features/automation.h"

#include <algorithm>

#include "util/executor.h"

namespace eid::features {

double DomainAutomation::dominant_period() const {
  if (pairs.empty()) return 0.0;
  const auto best = std::min_element(
      pairs.begin(), pairs.end(), [](const AutomatedPair& a, const AutomatedPair& b) {
        return a.divergence < b.divergence;
      });
  return best->period;
}

namespace {

// Automated pairs of one candidate domain, in deterministic (host) order.
std::vector<AutomatedPair> analyze_domain(
    const graph::DayGraph& graph, graph::DomainId domain,
    const timing::PeriodicityDetector& detector) {
  std::vector<AutomatedPair> out;
  for (const graph::HostId host : graph.domain_hosts(domain)) {
    const graph::EdgeData* edge = graph.edge(host, domain);
    if (edge == nullptr) continue;
    const timing::AutomationResult result = detector.test(edge->times);
    if (!result.automated) continue;
    AutomatedPair pair;
    pair.host = host;
    pair.domain = domain;
    pair.period = result.period;
    pair.divergence = result.divergence;
    out.push_back(pair);
  }
  return out;
}

}  // namespace

AutomationAnalysis AutomationAnalysis::analyze(
    const graph::DayGraph& graph, std::span<const graph::DomainId> candidates,
    const timing::PeriodicityDetector& detector, std::size_t n_threads,
    util::Executor* executor) {
  // Per-candidate result slots keep the merge order independent of thread
  // scheduling; the shared deterministic fan-out partitions the candidate
  // range (same helper as CSR finalize and rare extraction).
  std::vector<std::vector<AutomatedPair>> slots(candidates.size());
  util::parallel_ranges(
      executor, candidates.size(), n_threads,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          slots[i] = analyze_domain(graph, candidates[i], detector);
        }
      });

  AutomationAnalysis out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (slots[i].empty()) continue;
    DomainAutomation& agg = out.by_domain_[candidates[i]];
    agg.pairs.insert(agg.pairs.end(), slots[i].begin(), slots[i].end());
    out.pair_count_ += slots[i].size();
  }
  return out;
}

std::vector<graph::DomainId> AutomationAnalysis::automated_domains() const {
  std::vector<graph::DomainId> out;
  out.reserve(by_domain_.size());
  for (const auto& [domain, agg] : by_domain_) out.push_back(domain);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace eid::features
