// Registration-data features (§IV-C) are computed through this interface:
// the production system queries live WHOIS; the reproduction queries the
// simulator's synthetic registry. Lookups can fail (the paper notes WHOIS
// is often unparseable), in which case the pipeline substitutes the average
// across automated domains.
#pragma once

#include <optional>
#include <string>

#include "util/time.h"

namespace eid::features {

/// Registration window of a domain.
struct WhoisInfo {
  util::Day registered = 0;  ///< registration day
  util::Day expires = 0;     ///< end of the paid registration period
};

/// Abstract WHOIS data source.
class WhoisSource {
 public:
  virtual ~WhoisSource() = default;

  /// Registration info, or nullopt when the domain is unregistered or the
  /// record is unparseable.
  virtual std::optional<WhoisInfo> lookup(const std::string& domain) const = 0;
};

/// Fallback values used when a lookup fails: the paper sets DomAge and
/// DomValidity "at average values across all automated domains" (§VI-C).
struct WhoisDefaults {
  double age_days = 365.0;
  double validity_days = 365.0;
};

/// DomAge / DomValidity for a domain on `today`, with fallback.
/// DomAge = days since registration; DomValidity = days until expiry.
struct RegistrationFeatures {
  double age_days = 0.0;
  double validity_days = 0.0;
  bool from_whois = false;  ///< false when defaults were substituted
};

RegistrationFeatures registration_features(const WhoisSource& whois,
                                           const std::string& domain,
                                           util::Day today,
                                           const WhoisDefaults& defaults);

}  // namespace eid::features
