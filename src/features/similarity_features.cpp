#include "features/similarity_features.h"

#include <algorithm>
#include <cmath>

namespace eid::features {

double min_visit_gap(const graph::DayGraph& graph, graph::DomainId domain,
                     std::span<const graph::DomainId> labeled) {
  double best = kNoSharedVisitGap;
  for (const graph::HostId host : graph.domain_hosts(domain)) {
    const auto mine = graph.first_contact(host, domain);
    if (!mine) continue;
    for (const graph::DomainId other : labeled) {
      if (other == domain) continue;
      const auto theirs = graph.first_contact(host, other);
      if (!theirs) continue;
      best = std::min(best, std::abs(static_cast<double>(*mine - *theirs)));
    }
  }
  return best;
}

IpProximity ip_proximity(const graph::DayGraph& graph, graph::DomainId domain,
                         std::span<const graph::DomainId> labeled) {
  IpProximity out;
  const auto my_ips = graph.domain_ips(domain);
  for (const graph::DomainId other : labeled) {
    if (other == domain) continue;
    for (const util::Ipv4 a : my_ips) {
      for (const util::Ipv4 b : graph.domain_ips(other)) {
        if (util::same_subnet24(a, b)) out.share24 = true;
        if (util::same_subnet16(a, b)) out.share16 = true;
      }
    }
    if (out.share24 && out.share16) break;
  }
  return out;
}

SimilarityFeatureRow extract_similarity_features(
    const graph::DayGraph& graph, graph::DomainId domain,
    std::span<const graph::DomainId> labeled, const profile::UaHistory& ua_history,
    const WhoisSource& whois, util::Day today, const WhoisDefaults& defaults) {
  SimilarityFeatureRow row;
  row.domain = domain;
  const auto hosts = graph.domain_hosts(domain);
  row.no_hosts = static_cast<double>(hosts.size());
  row.dom_interval = min_visit_gap(graph, domain, labeled);
  const IpProximity prox = ip_proximity(graph, domain, labeled);
  row.ip24 = prox.share24 ? 1.0 : 0.0;
  row.ip16 = prox.share16 ? 1.0 : 0.0;
  std::size_t no_ref_hosts = 0;
  std::size_t rare_ua_hosts = 0;
  for (const graph::HostId host : hosts) {
    const graph::EdgeData* edge = graph.edge(host, domain);
    if (edge == nullptr) continue;
    if (!edge->any_referer) ++no_ref_hosts;
    if (host_uses_rare_ua(*edge, graph, ua_history)) ++rare_ua_hosts;
  }
  if (!hosts.empty()) {
    row.no_ref = static_cast<double>(no_ref_hosts) / static_cast<double>(hosts.size());
    row.rare_ua =
        static_cast<double>(rare_ua_hosts) / static_cast<double>(hosts.size());
  }
  const RegistrationFeatures reg =
      registration_features(whois, graph.domain_name(domain), today, defaults);
  row.dom_age = reg.age_days;
  row.dom_validity = reg.validity_days;
  row.whois_resolved = reg.from_whois;
  return row;
}

}  // namespace eid::features
