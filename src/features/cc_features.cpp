#include "features/cc_features.h"

namespace eid::features {

RegistrationFeatures registration_features(const WhoisSource& whois,
                                           const std::string& domain,
                                           util::Day today,
                                           const WhoisDefaults& defaults) {
  RegistrationFeatures out;
  const auto info = whois.lookup(domain);
  // A registration date in the future means the record did not exist at
  // query time (the paper observed DGA domains registered only after
  // detection, §VI-D) — treat it like a failed lookup.
  if (info && info->registered <= today) {
    out.age_days = static_cast<double>(today - info->registered);
    out.validity_days = static_cast<double>(info->expires - today);
    out.from_whois = true;
  } else {
    out.age_days = defaults.age_days;
    out.validity_days = defaults.validity_days;
    out.from_whois = false;
  }
  return out;
}

bool host_uses_rare_ua(const graph::EdgeData& edge, const graph::DayGraph& graph,
                       const profile::UaHistory& ua_history) {
  if (edge.user_agents.empty()) {
    // Only UA-less requests on the edge (or DNS data with no UA context at
    // all — callers guard on has_http_context via NoRef being 0 there).
    return edge.any_empty_ua;
  }
  for (const graph::UaId ua : edge.user_agents) {
    if (!ua_history.is_rare(graph.ua_name(ua))) return false;
  }
  return true;
}

CcFeatureRow extract_cc_features(const graph::DayGraph& graph,
                                 graph::DomainId domain,
                                 const AutomationAnalysis& automation,
                                 const profile::UaHistory& ua_history,
                                 const WhoisSource& whois, util::Day today,
                                 const WhoisDefaults& defaults) {
  CcFeatureRow row;
  row.domain = domain;
  const auto hosts = graph.domain_hosts(domain);
  row.no_hosts = static_cast<double>(hosts.size());
  if (const DomainAutomation* agg = automation.domain(domain)) {
    row.auto_hosts = static_cast<double>(agg->host_count());
  }
  std::size_t no_ref_hosts = 0;
  std::size_t rare_ua_hosts = 0;
  for (const graph::HostId host : hosts) {
    const graph::EdgeData* edge = graph.edge(host, domain);
    if (edge == nullptr) continue;
    if (!edge->any_referer) ++no_ref_hosts;
    if (host_uses_rare_ua(*edge, graph, ua_history)) ++rare_ua_hosts;
  }
  if (!hosts.empty()) {
    row.no_ref = static_cast<double>(no_ref_hosts) / static_cast<double>(hosts.size());
    row.rare_ua =
        static_cast<double>(rare_ua_hosts) / static_cast<double>(hosts.size());
  }
  const RegistrationFeatures reg =
      registration_features(whois, graph.domain_name(domain), today, defaults);
  row.dom_age = reg.age_days;
  row.dom_validity = reg.validity_days;
  row.whois_resolved = reg.from_whois;
  return row;
}

}  // namespace eid::features
