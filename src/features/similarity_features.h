// Domain-similarity features (§IV-D): how much does a rare domain D look
// like the set S of domains already labeled malicious in earlier belief
// propagation iterations?
//   NoHosts      domain connectivity
//   DomInterval  minimum gap between a host's first visit to D and the same
//                host's first visit to any domain in S (seconds; a full day
//                when no host visited both)
//   IP24 / IP16  1 when D shares a /24 (resp. /16) with some domain in S
//   NoRef, RareUA, DomAge, DomValidity as in the C&C detector
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "features/cc_features.h"

namespace eid::features {

inline constexpr std::size_t kSimFeatureCount = 8;

inline constexpr std::array<const char*, kSimFeatureCount> kSimFeatureNames = {
    "NoHosts", "DomInterval", "IP24", "IP16",
    "NoRef",   "RareUA",      "DomAge", "DomValidity"};

/// Gap used when no host visited both D and a labeled domain.
inline constexpr double kNoSharedVisitGap = 86400.0;

struct SimilarityFeatureRow {
  graph::DomainId domain = 0;
  double no_hosts = 0.0;
  double dom_interval = kNoSharedVisitGap;
  double ip24 = 0.0;
  double ip16 = 0.0;
  double no_ref = 0.0;
  double rare_ua = 0.0;
  double dom_age = 0.0;
  double dom_validity = 0.0;
  bool whois_resolved = false;

  std::array<double, kSimFeatureCount> as_array() const {
    return {no_hosts, dom_interval, ip24, ip16, no_ref, rare_ua, dom_age,
            dom_validity};
  }
};

/// Minimum first-visit gap between D and the labeled set over shared hosts.
double min_visit_gap(const graph::DayGraph& graph, graph::DomainId domain,
                     std::span<const graph::DomainId> labeled);

/// IP-space proximity of D to the labeled set: {share24, share16}.
struct IpProximity {
  bool share24 = false;
  bool share16 = false;
};
IpProximity ip_proximity(const graph::DayGraph& graph, graph::DomainId domain,
                         std::span<const graph::DomainId> labeled);

/// Full similarity feature row for D relative to labeled set S.
SimilarityFeatureRow extract_similarity_features(
    const graph::DayGraph& graph, graph::DomainId domain,
    std::span<const graph::DomainId> labeled, const profile::UaHistory& ua_history,
    const WhoisSource& whois, util::Day today, const WhoisDefaults& defaults);

}  // namespace eid::features
