// Day-level automation analysis: run the periodicity detector over every
// (host, domain) edge of the candidate domains and aggregate per domain.
// This feeds the AutoHosts feature, the Detect_C&C hook of Algorithm 1 and
// the LANL multi-host-synchrony C&C rule.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "graph/day_graph.h"
#include "timing/periodicity.h"

namespace eid::features {

/// One automated (host, domain) pair.
struct AutomatedPair {
  graph::HostId host = 0;
  graph::DomainId domain = 0;
  double period = 0.0;
  double divergence = 0.0;
};

/// Aggregated automation state for one domain.
struct DomainAutomation {
  std::vector<AutomatedPair> pairs;  ///< the automated edges of the domain

  bool any() const { return !pairs.empty(); }
  std::size_t host_count() const { return pairs.size(); }

  /// Period of the pair with the lowest divergence (the cleanest beacon).
  double dominant_period() const;
};

/// Automation analysis over a set of candidate domains.
class AutomationAnalysis {
 public:
  /// Scan all edges of `candidates` in `graph` with `detector`.
  /// `n_threads > 1` partitions the candidate set across worker threads
  /// (each edge test is independent); results are merged in candidate
  /// order, so the outcome is bit-identical for any thread count. This is
  /// the hot loop of daily analysis at enterprise volume (§II-C).
  /// `executor` (optional) runs the fan-out on a persistent pool.
  static AutomationAnalysis analyze(const graph::DayGraph& graph,
                                    std::span<const graph::DomainId> candidates,
                                    const timing::PeriodicityDetector& detector,
                                    std::size_t n_threads = 1,
                                    util::Executor* executor = nullptr);

  /// True when at least one host beacons to the domain.
  bool is_automated(graph::DomainId domain) const {
    return by_domain_.contains(domain);
  }

  /// Automation aggregate; nullptr when no edge of the domain is automated.
  const DomainAutomation* domain(graph::DomainId domain) const {
    auto it = by_domain_.find(domain);
    return it == by_domain_.end() ? nullptr : &it->second;
  }

  /// Total automated (host, domain) pairs (the unit Table II counts).
  std::size_t pair_count() const { return pair_count_; }

  /// Domains with at least one automated edge.
  std::vector<graph::DomainId> automated_domains() const;

 private:
  std::unordered_map<graph::DomainId, DomainAutomation> by_domain_;
  std::size_t pair_count_ = 0;
};

}  // namespace eid::features
