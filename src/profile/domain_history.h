// Incremental history of external destinations (§III-A, §IV-A): the system
// bootstraps over a training month, then updates daily. A destination is
// "new" on a day when it is absent from the history, and "unpopular" when
// fewer than a threshold of distinct internal hosts contacted it that day.
// New AND unpopular => "rare destination", the starting point of detection.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/day_graph.h"
#include "util/interner.h"
#include "util/time.h"

namespace eid::profile {

/// Set of (folded) domains ever contacted by internal hosts.
class DomainHistory {
 public:
  /// Owned-string set probed allocation-free with views: is_new runs once
  /// per domain per day, so lookups must not construct temporaries.
  using DomainSet = util::TransparentStringSet;

  /// True when the history has never seen the domain. Allocation-free.
  bool is_new(std::string_view domain) const { return !seen_.contains(domain); }

  /// Record a day's distinct domains. Call at end-of-day so the day's own
  /// traffic does not mask its new destinations.
  void update(const std::vector<std::string>& domains) {
    for (const auto& d : domains) insert(d);
    ++days_ingested_;
  }

  void update_one(std::string_view domain) { insert(domain); }

  std::size_t size() const { return seen_.size(); }
  std::size_t days_ingested() const { return days_ingested_; }

  /// Full domain set (persistence, diagnostics).
  const DomainSet& domains() const { return seen_; }

  /// Restore from persisted state, replacing current contents.
  void restore(DomainSet domains, std::size_t days) {
    seen_ = std::move(domains);
    days_ingested_ = days;
  }

  // ---- Delta checkpoints (storage/delta.h) ----

  /// Start (or stop) recording first-seen domains. Turning journaling on
  /// clears any previous journal; it never affects is_new()/update().
  void set_journaling(bool on) {
    journaling_ = on;
    journal_.clear();
  }

  /// Domains first seen since journaling started (or the last drain), in
  /// first-seen order. Draining resets the journal.
  std::vector<std::string> drain_journal() {
    return std::exchange(journal_, {});
  }

  /// Apply a delta: insert `domains`, set the absolute day counter a frame
  /// carries. Never journals (deltas are already on disk).
  void absorb(std::span<const std::string> domains, std::size_t days_ingested) {
    for (const auto& d : domains) seen_.insert(d);
    days_ingested_ = days_ingested;
  }

 private:
  void insert(std::string_view domain) {
    if (seen_.contains(domain)) return;  // allocation-free on the hot path
    const auto [it, fresh] = seen_.emplace(domain);
    if (fresh && journaling_) journal_.push_back(*it);
  }

  DomainSet seen_;
  std::size_t days_ingested_ = 0;
  bool journaling_ = false;
  std::vector<std::string> journal_;  ///< first-seen since last drain
};

/// Result of rare-destination extraction for one day.
struct RareExtraction {
  std::vector<graph::DomainId> rare_domains;  ///< new && unpopular, sorted
  std::size_t new_domains = 0;                ///< new regardless of popularity
  std::size_t total_domains = 0;
};

/// Extract the day's rare destinations from its graph. `popularity_threshold`
/// is the maximum distinct-host count for "unpopular" (the paper uses 10,
/// chosen with enterprise security professionals). `n_threads` partitions
/// the domain-id range across worker threads; per-range results concatenate
/// in range order, so the output is bit-identical for any thread count.
/// `executor` (optional) carries the fan-out on a persistent pool instead
/// of spawning threads.
RareExtraction extract_rare_destinations(const graph::DayGraph& graph,
                                         const DomainHistory& history,
                                         std::size_t popularity_threshold = 10,
                                         std::size_t n_threads = 1,
                                         util::Executor* executor = nullptr);

/// End-of-day history update from a finalized graph.
void update_history(DomainHistory& history, const graph::DayGraph& graph);

}  // namespace eid::profile
