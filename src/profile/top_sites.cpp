#include "profile/top_sites.h"

#include <fstream>

#include "util/strings.h"

namespace eid::profile {

void TopSitesList::add(std::string_view domain) {
  sites_.insert(util::to_lower(util::trim(domain)));
}

std::size_t TopSitesList::load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::size_t loaded = 0;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    // Alexa CSV shape: "123,example.com" — keep what follows the comma.
    const auto comma = trimmed.rfind(',');
    const std::string_view domain =
        comma == std::string_view::npos ? trimmed : trimmed.substr(comma + 1);
    if (domain.empty()) continue;
    add(domain);
    ++loaded;
  }
  return loaded;
}

std::vector<graph::DomainId> filter_top_sites(
    const graph::DayGraph& graph, const std::vector<graph::DomainId>& rare,
    const TopSitesList& top_sites) {
  std::vector<graph::DomainId> out;
  out.reserve(rare.size());
  for (const graph::DomainId domain : rare) {
    if (!top_sites.contains(graph.domain_name(domain))) out.push_back(domain);
  }
  return out;
}

}  // namespace eid::profile
