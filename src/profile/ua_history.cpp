#include "profile/ua_history.h"

#include <algorithm>
#include <utility>

namespace eid::profile {

void UaHistory::observe(std::string_view ua, std::string_view host) {
  if (ua.empty()) return;
  auto it = uas_.find(ua);
  if (it == uas_.end()) it = uas_.emplace(std::string(ua), Entry{}).first;
  Entry& entry = it->second;
  if (entry.popular) return;
  const util::InternId id = hosts_.intern(host);
  if (std::find(entry.host_ids.begin(), entry.host_ids.end(), id) !=
      entry.host_ids.end()) {
    return;
  }
  entry.host_ids.push_back(id);
  if (entry.host_ids.size() >= rare_threshold_) {
    entry.popular = true;
    entry.host_ids.clear();            // popularity is all we need from now on
    entry.host_ids.shrink_to_fit();
  }
  // The host push (and any popularity flip it caused) is the single
  // mutation site of observe(): a fresh entry always reaches it, and the
  // early returns above mean nothing changed.
  if (journaling_) journal_touch(it->first);
}

std::vector<std::string> UaHistory::drain_journal() {
  journal_seen_.clear();
  return std::exchange(journal_, {});
}

bool UaHistory::entry_view(std::string_view ua, bool& popular,
                           std::span<const util::InternId>& hosts) const {
  const auto it = uas_.find(ua);
  if (it == uas_.end()) return false;
  popular = it->second.popular;
  hosts = std::span<const util::InternId>(it->second.host_ids.data(),
                                          it->second.host_ids.size());
  return true;
}

void UaHistory::journal_touch(const std::string& ua) {
  if (journal_seen_.insert(ua).second) journal_.push_back(ua);
}

void UaHistory::observe_day(const std::vector<logs::ConnEvent>& events) {
  for (const auto& event : events) {
    if (event.has_http_context) observe(event.user_agent, event.host);
  }
}

bool UaHistory::is_rare(std::string_view ua) const {
  const auto it = uas_.find(ua);
  if (it == uas_.end()) return true;
  return !it->second.popular;
}

std::size_t UaHistory::host_count(std::string_view ua) const {
  const auto it = uas_.find(ua);
  if (it == uas_.end()) return 0;
  return it->second.popular ? rare_threshold_ : it->second.host_ids.size();
}

void UaHistory::restore_entry(std::string_view ua, bool popular,
                              std::span<const std::string_view> hosts) {
  std::vector<util::InternId> ids;
  if (!popular) {
    ids.reserve(hosts.size());
    for (const std::string_view host : hosts) {
      const util::InternId id = hosts_.intern(host);
      if (std::find(ids.begin(), ids.end(), id) == ids.end()) ids.push_back(id);
    }
  }
  restore_entry_ids(ua, popular, std::move(ids));
}

void UaHistory::restore_entry_ids(std::string_view ua, bool popular,
                                  std::vector<util::InternId> host_ids) {
  Entry entry;
  // Enforce the observe() invariant on restore too: threshold-many
  // distinct hosts means popular, and popular entries carry no host set —
  // a persisted entry listing >= threshold hosts (hand-edited or written
  // by an older tool) normalizes instead of violating the cap.
  entry.popular = popular || host_ids.size() >= rare_threshold_;
  if (!entry.popular) entry.host_ids = std::move(host_ids);
  if (const auto it = uas_.find(ua); it != uas_.end()) {
    it->second = std::move(entry);
  } else {
    uas_.emplace(std::string(ua), std::move(entry));
  }
}

}  // namespace eid::profile
