#include "profile/ua_history.h"

namespace eid::profile {

void UaHistory::observe(std::string_view ua, std::string_view host) {
  if (ua.empty()) return;
  Entry& entry = uas_[std::string(ua)];
  if (entry.popular) return;
  entry.hosts.insert(std::string(host));
  if (entry.hosts.size() >= rare_threshold_) {
    entry.popular = true;
    entry.hosts.clear();  // popularity is all we need from now on
  }
}

void UaHistory::observe_day(const std::vector<logs::ConnEvent>& events) {
  for (const auto& event : events) {
    if (event.has_http_context) observe(event.user_agent, event.host);
  }
}

bool UaHistory::is_rare(std::string_view ua) const {
  auto it = uas_.find(std::string(ua));
  if (it == uas_.end()) return true;
  return !it->second.popular;
}

std::size_t UaHistory::host_count(std::string_view ua) const {
  auto it = uas_.find(std::string(ua));
  if (it == uas_.end()) return 0;
  return it->second.popular ? rare_threshold_ : it->second.hosts.size();
}

}  // namespace eid::profile
