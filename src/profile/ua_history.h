// User-agent profiling (§IV-C): enterprise software populations are
// homogeneous, so a UA string used by very few hosts hints at unpopular —
// possibly malicious — software. The history counts, per UA, the distinct
// hosts that ever used it; a UA is "rare" when that count stays below a
// threshold (10, per SOC recommendation). Distinct-host sets are capped at
// the threshold: once a UA is popular we only need to know it is popular.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "logs/records.h"

namespace eid::profile {

class UaHistory {
 public:
  explicit UaHistory(std::size_t rare_threshold = 10)
      : rare_threshold_(rare_threshold) {}

  /// Record that `host` used `ua`. Empty UA strings are ignored (tracked
  /// separately as the NoUA signal by the feature layer).
  void observe(std::string_view ua, std::string_view host);

  /// Convenience: ingest every UA-bearing event of a day.
  void observe_day(const std::vector<logs::ConnEvent>& events);

  /// True when the UA has been used by fewer than the threshold of hosts.
  /// Unknown UAs are rare by definition.
  bool is_rare(std::string_view ua) const;

  /// Distinct hosts seen for a UA, saturating at the rare threshold.
  std::size_t host_count(std::string_view ua) const;

  std::size_t distinct_uas() const { return uas_.size(); }
  std::size_t rare_threshold() const { return rare_threshold_; }

  /// Visit every entry: fn(ua, popular, hosts). Hosts is empty for popular
  /// UAs (the set is dropped once popularity is established).
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& [ua, entry] : uas_) {
      fn(ua, entry.popular, entry.hosts);
    }
  }

  /// Restore one persisted entry (replaces any existing state for `ua`).
  void restore_entry(const std::string& ua, bool popular,
                     std::unordered_set<std::string> hosts) {
    Entry entry;
    entry.popular = popular;
    if (!popular) entry.hosts = std::move(hosts);
    uas_[ua] = std::move(entry);
  }

 private:
  struct Entry {
    std::unordered_set<std::string> hosts;  ///< capped at rare_threshold_
    bool popular = false;
  };
  std::unordered_map<std::string, Entry> uas_;
  std::size_t rare_threshold_;
};

}  // namespace eid::profile
