// User-agent profiling (§IV-C): enterprise software populations are
// homogeneous, so a UA string used by very few hosts hints at unpopular —
// possibly malicious — software. The history counts, per UA, the distinct
// hosts that ever used it; a UA is "rare" when that count stays below a
// threshold (10, per SOC recommendation). Distinct-host sets are capped at
// the threshold: once a UA is popular we only need to know it is popular.
//
// Host names are interned once in a shared table and entries hold dense
// ids: at enterprise scale the same workstation name appears in thousands
// of rare-UA entries, so per-entry string sets would store it thousands of
// times. Membership per entry is a linear scan of at most rare_threshold
// ids — cheaper than hashing for the capped sets. The id table also gives
// checkpoints a bulk-restore path (storage/state.h) that never re-hashes a
// host name per entry.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "logs/records.h"
#include "util/interner.h"

namespace eid::profile {

class UaHistory {
 public:
  explicit UaHistory(std::size_t rare_threshold = 10)
      : rare_threshold_(rare_threshold) {}

  /// Record that `host` used `ua`. Empty UA strings are ignored (tracked
  /// separately as the NoUA signal by the feature layer).
  void observe(std::string_view ua, std::string_view host);

  /// Convenience: ingest every UA-bearing event of a day.
  void observe_day(const std::vector<logs::ConnEvent>& events);

  /// True when the UA has been used by fewer than the threshold of hosts.
  /// Unknown UAs are rare by definition.
  bool is_rare(std::string_view ua) const;

  /// Distinct hosts seen for a UA, saturating at the rare threshold.
  std::size_t host_count(std::string_view ua) const;

  std::size_t distinct_uas() const { return uas_.size(); }
  std::size_t rare_threshold() const { return rare_threshold_; }

  /// Distinct host names across all rare entries (size of the intern table).
  std::size_t distinct_hosts() const { return hosts_.size(); }

  /// Visit every entry: fn(ua, popular, hosts) with hosts a
  /// std::span<const std::string_view> (empty once a UA is popular).
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    std::vector<std::string_view> views;
    for (const auto& [ua, entry] : uas_) {
      views.clear();
      for (const util::InternId id : entry.host_ids) {
        views.push_back(hosts_.name(id));
      }
      fn(ua, entry.popular,
         std::span<const std::string_view>(views.data(), views.size()));
    }
  }

  /// Id-based entry visitation: fn(ua, popular, host_ids). The ids index
  /// host_name(); serializers resolve each distinct host once instead of
  /// once per entry.
  template <typename Fn>
  void for_each_entry_ids(Fn&& fn) const {
    for (const auto& [ua, entry] : uas_) {
      fn(ua, entry.popular,
         std::span<const util::InternId>(entry.host_ids.data(),
                                         entry.host_ids.size()));
    }
  }

  /// Host name for an id from for_each_entry_ids(). id < distinct_hosts().
  const std::string& host_name(util::InternId id) const {
    return hosts_.name(id);
  }

  /// Restore one persisted entry (replaces any existing state for `ua`).
  void restore_entry(std::string_view ua, bool popular,
                     std::span<const std::string_view> hosts);

  // ---- Bulk restore (storage/state.h) ----
  // Register each distinct host name once, then add entries referencing
  // the returned ids — the load path never hashes a host name per entry.

  /// Pre-size the UA table for a known entry count.
  void reserve_uas(std::size_t n) { uas_.reserve(n); }

  /// Dense id for a host name (interning it on first sight).
  util::InternId restore_host(std::string_view host) {
    return hosts_.intern(host);
  }

  /// Add an entry whose hosts are ids from restore_host(). `host_ids` must
  /// be duplicate-free; ignored (and dropped) when `popular`.
  void restore_entry_ids(std::string_view ua, bool popular,
                         std::vector<util::InternId> host_ids);

  // ---- Delta checkpoints (storage/delta.h) ----

  /// Start (or stop) recording which UAs observe() mutates. Turning
  /// journaling on clears any previous journal. Restores never journal.
  void set_journaling(bool on) {
    journaling_ = on;
    journal_.clear();
    journal_seen_.clear();
  }

  /// UA strings whose entries changed since journaling started (or the
  /// last drain), in first-touch order. Draining resets the journal.
  std::vector<std::string> drain_journal();

  /// Current entry for a UA: popular flag + host-id span (ids index
  /// host_name(); empty once popular). False when the UA is unknown.
  bool entry_view(std::string_view ua, bool& popular,
                  std::span<const util::InternId>& hosts) const;

 private:
  struct Entry {
    std::vector<util::InternId> host_ids;  ///< capped at rare_threshold_
    bool popular = false;
  };

  void journal_touch(const std::string& ua);

  util::TransparentStringMap<Entry> uas_;
  util::Interner hosts_;  ///< distinct hosts across all rare entries
  std::size_t rare_threshold_;
  bool journaling_ = false;
  std::vector<std::string> journal_;  ///< touched UAs, first-touch order
  util::TransparentStringSet journal_seen_;
};

}  // namespace eid::profile
