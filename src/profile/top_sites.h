// Global-popularity whitelist (§II-A): among 14,915 IOCs collected by a
// large enterprise's SOC over three years, *none* appeared in the Alexa
// top one million. Attackers avoid popular, well-administered domains, so
// a top-sites list is a cheap precision filter applied after rare-
// destination extraction: a domain that is globally popular but new to
// this enterprise (a fresh CDN edge, a regional news site) is dropped
// before scoring.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "graph/day_graph.h"

namespace eid::profile {

class TopSitesList {
 public:
  /// Add one (folded) domain.
  void add(std::string_view domain);

  bool contains(std::string_view domain) const {
    return sites_.contains(std::string(domain));
  }

  std::size_t size() const { return sites_.size(); }

  /// Load an Alexa-style file: one domain per line, optionally prefixed
  /// with "rank," (the Alexa CSV shape). '#' comments and blank lines are
  /// skipped. Returns the number of domains loaded, 0 if unreadable.
  std::size_t load(const std::filesystem::path& path);

  /// Full (normalized) site set — persistence and diagnostics.
  const std::unordered_set<std::string>& sites() const { return sites_; }

 private:
  std::unordered_set<std::string> sites_;
};

/// Drop rare-domain ids whose name is on the top-sites list; preserves
/// input order of the survivors.
std::vector<graph::DomainId> filter_top_sites(
    const graph::DayGraph& graph, const std::vector<graph::DomainId>& rare,
    const TopSitesList& top_sites);

}  // namespace eid::profile
