// Persistence for the incrementally-maintained profiles (§III-E: histories
// are "initialized during a bootstrapping period ... then updated
// incrementally daily"). A production deployment restarts between daily
// batches, so the domain and UA histories round-trip through files in one
// of two formats, auto-detected by magic on load:
//
//  * the legacy line-oriented text formats below (CRLF tolerated), kept so
//    existing profiles migrate transparently:
//
//      eid-domain-history 1
//      days <n>
//      <domain>            (one per line)
//
//      eid-ua-history 1
//      threshold <n>
//      P\t<ua>             (popular UA)
//      R\t<ua>\t<host>...  (rare UA with its observed hosts, tab separated)
//
//  * the compact binary container (storage/state.h): interned string
//    table, varint ids, per-section CRC32 — the format month-scale
//    histories should be written in (save via storage::save_*_history).
//
// Loaders report failure reasons through an optional storage::LoadStatus
// out-param (file-not-found vs bad magic vs malformed line N vs checksum
// mismatch), instead of a bare nullopt.
#pragma once

#include <filesystem>
#include <optional>

#include "profile/domain_history.h"
#include "profile/ua_history.h"
#include "storage/status.h"

namespace eid::profile {

/// Write the history in the legacy text format; returns false on I/O
/// failure. Entries the line format cannot represent (whitespace or
/// control characters in the name) are skipped and counted into
/// `*skipped` when provided — the binary format (storage::save_*) carries
/// them exactly. Prefer storage::save_domain_history for large histories.
bool save_domain_history(const DomainHistory& history,
                         const std::filesystem::path& path,
                         std::size_t* skipped = nullptr);

/// Load a history, auto-detecting text vs binary by magic. nullopt on
/// failure, with the reason in `status` when provided.
std::optional<DomainHistory> load_domain_history(
    const std::filesystem::path& path,
    storage::LoadStatus* status = nullptr);

bool save_ua_history(const UaHistory& history, const std::filesystem::path& path,
                     std::size_t* skipped = nullptr);

std::optional<UaHistory> load_ua_history(const std::filesystem::path& path,
                                         storage::LoadStatus* status = nullptr);

}  // namespace eid::profile
