// Persistence for the incrementally-maintained profiles (§III-E: histories
// are "initialized during a bootstrapping period ... then updated
// incrementally daily"). A production deployment restarts between daily
// batches, so the domain and UA histories round-trip through simple
// line-oriented files:
//
//   eid-domain-history 1
//   days <n>
//   <domain>            (one per line)
//
//   eid-ua-history 1
//   threshold <n>
//   P\t<ua>             (popular UA)
//   R\t<ua>\t<host>...  (rare UA with its observed hosts, tab separated)
#pragma once

#include <filesystem>
#include <optional>

#include "profile/domain_history.h"
#include "profile/ua_history.h"

namespace eid::profile {

/// Write the history; returns false on I/O failure.
bool save_domain_history(const DomainHistory& history,
                         const std::filesystem::path& path);

/// Load a history; nullopt on missing file, bad magic or malformed content.
std::optional<DomainHistory> load_domain_history(
    const std::filesystem::path& path);

bool save_ua_history(const UaHistory& history, const std::filesystem::path& path);

std::optional<UaHistory> load_ua_history(const std::filesystem::path& path);

}  // namespace eid::profile
