#include "profile/persistence.h"

#include <charconv>
#include <fstream>
#include <span>

#include "storage/container.h"
#include "storage/state.h"
#include "util/strings.h"

namespace eid::profile {
namespace {

using storage::LoadError;
using storage::LoadStatus;
using storage::set_status;

constexpr std::string_view kDomainMagic = "eid-domain-history 1";
constexpr std::string_view kUaMagic = "eid-ua-history 1";

bool parse_size(std::string_view text, std::size_t& out) {
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc() && ptr == end;
}

/// Line cursor over a loaded text file: splits on '\n' and strips one
/// trailing '\r', so CRLF files (Windows collectors, git autocrlf) parse
/// identically to LF files.
class LineCursor {
 public:
  explicit LineCursor(std::string_view text) : rest_(text) {}

  bool next(std::string_view& line) {
    if (done_) return false;
    const std::size_t eol = rest_.find('\n');
    if (eol == std::string_view::npos) {
      line = rest_;
      done_ = true;
      // A file ending without a final newline still yields its last line;
      // an empty tail (file ended with '\n') does not.
      if (line.empty()) return false;
    } else {
      line = rest_.substr(0, eol);
      rest_.remove_prefix(eol + 1);
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    ++line_no_;
    return true;
  }

  std::size_t line_no() const { return line_no_; }

 private:
  std::string_view rest_;
  std::size_t line_no_ = 0;
  bool done_ = false;
};

bool has_control_chars(std::string_view text) {
  for (const char c : text) {
    if (static_cast<unsigned char>(c) < 0x20) return true;
  }
  return false;
}

void set_line_status(LoadStatus* status, LoadError error, std::size_t line_no,
                     const std::string& what) {
  set_status(status, error, "line " + std::to_string(line_no) + ": " + what);
}

std::optional<DomainHistory> parse_domain_text(std::string_view text,
                                               LoadStatus* status) {
  LineCursor cursor(text);
  std::string_view line;
  if (!cursor.next(line) || line != kDomainMagic) {
    set_status(status, LoadError::BadMagic,
               "expected \"" + std::string(kDomainMagic) + "\" header");
    return std::nullopt;
  }
  if (!cursor.next(line)) {
    set_status(status, LoadError::Truncated, "missing \"days <n>\" header");
    return std::nullopt;
  }
  const auto header = util::split(line, ' ');
  std::size_t days = 0;
  if (header.size() != 2 || header[0] != "days" || !parse_size(header[1], days)) {
    set_line_status(status, LoadError::Malformed, cursor.line_no(),
                    "expected \"days <n>\"");
    return std::nullopt;
  }
  DomainHistory::DomainSet domains;
  while (cursor.next(line)) {
    if (line.empty()) continue;
    // A domain name never contains whitespace or control characters; a
    // line that does is trailing garbage (torn write, concatenated file),
    // not data to swallow.
    if (line.find(' ') != std::string_view::npos ||
        line.find('\t') != std::string_view::npos || has_control_chars(line)) {
      set_line_status(status, LoadError::Malformed, cursor.line_no(),
                      "not a domain name");
      return std::nullopt;
    }
    domains.insert(std::string(line));
  }
  DomainHistory history;
  history.restore(std::move(domains), days);
  return history;
}

std::optional<UaHistory> parse_ua_text(std::string_view text,
                                       LoadStatus* status) {
  LineCursor cursor(text);
  std::string_view line;
  if (!cursor.next(line) || line != kUaMagic) {
    set_status(status, LoadError::BadMagic,
               "expected \"" + std::string(kUaMagic) + "\" header");
    return std::nullopt;
  }
  if (!cursor.next(line)) {
    set_status(status, LoadError::Truncated, "missing \"threshold <n>\" header");
    return std::nullopt;
  }
  const auto header = util::split(line, ' ');
  std::size_t threshold = 0;
  if (header.size() != 2 || header[0] != "threshold" ||
      !parse_size(header[1], threshold) || threshold == 0) {
    set_line_status(status, LoadError::Malformed, cursor.line_no(),
                    "expected \"threshold <n>\" with n >= 1");
    return std::nullopt;
  }
  UaHistory history(threshold);
  while (cursor.next(line)) {
    if (line.empty()) continue;
    const auto fields = util::split(line, '\t');
    if (fields.size() < 2 || fields[1].empty()) {
      set_line_status(status, LoadError::Malformed, cursor.line_no(),
                      "expected \"P\\t<ua>\" or \"R\\t<ua>\\t<host>...\"");
      return std::nullopt;
    }
    const std::string ua(fields[1]);
    if (fields[0] == "P") {
      history.restore_entry(ua, true, {});
    } else if (fields[0] == "R") {
      const std::span<const std::string_view> hosts(fields.data() + 2,
                                                    fields.size() - 2);
      history.restore_entry(ua, false, hosts);
    } else {
      set_line_status(status, LoadError::Malformed, cursor.line_no(),
                      "unknown entry kind \"" + std::string(fields[0]) + "\"");
      return std::nullopt;
    }
  }
  return history;
}

}  // namespace

bool save_domain_history(const DomainHistory& history,
                         const std::filesystem::path& path,
                         std::size_t* skipped) {
  if (skipped != nullptr) *skipped = 0;
  std::ofstream out(path);
  if (!out) return false;
  out << kDomainMagic << '\n';
  out << "days " << history.days_ingested() << '\n';
  for (const auto& domain : history.domains()) {
    // Names with whitespace or control characters cannot round-trip
    // through the line format (the loader rejects them as trailing
    // garbage); skip them like save_ua_history does — the binary format
    // in storage/state.h carries them exactly.
    if (domain.find(' ') != std::string::npos ||
        domain.find('\t') != std::string::npos || has_control_chars(domain)) {
      if (skipped != nullptr) ++*skipped;
      continue;
    }
    out << domain << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<DomainHistory> load_domain_history(
    const std::filesystem::path& path, storage::LoadStatus* status) {
  const auto bytes = storage::read_file(path, status);
  if (!bytes) return std::nullopt;
  if (storage::looks_like_container(*bytes)) {
    return storage::decode_domain_history(*bytes, status);
  }
  return parse_domain_text(*bytes, status);
}

bool save_ua_history(const UaHistory& history,
                     const std::filesystem::path& path, std::size_t* skipped) {
  if (skipped != nullptr) *skipped = 0;
  std::ofstream out(path);
  if (!out) return false;
  out << kUaMagic << '\n';
  out << "threshold " << history.rare_threshold() << '\n';
  bool ok = true;
  history.for_each_entry([&](const std::string& ua, bool popular,
                             std::span<const std::string_view> hosts) {
    // UA strings containing line-format control characters cannot
    // round-trip through the text format; skip them (the binary format in
    // storage/state.h carries them exactly).
    if (ua.find('\t') != std::string::npos ||
        ua.find('\n') != std::string::npos ||
        ua.find('\r') != std::string::npos) {
      if (skipped != nullptr) ++*skipped;
      return;
    }
    if (popular) {
      out << "P\t" << ua << '\n';
    } else {
      out << "R\t" << ua;
      for (const auto& host : hosts) out << '\t' << host;
      out << '\n';
    }
    ok = ok && static_cast<bool>(out);
  });
  return ok && static_cast<bool>(out);
}

std::optional<UaHistory> load_ua_history(const std::filesystem::path& path,
                                         storage::LoadStatus* status) {
  const auto bytes = storage::read_file(path, status);
  if (!bytes) return std::nullopt;
  if (storage::looks_like_container(*bytes)) {
    return storage::decode_ua_history(*bytes, status);
  }
  return parse_ua_text(*bytes, status);
}

}  // namespace eid::profile
