#include "profile/persistence.h"

#include <charconv>
#include <fstream>

#include "util/strings.h"

namespace eid::profile {
namespace {

constexpr std::string_view kDomainMagic = "eid-domain-history 1";
constexpr std::string_view kUaMagic = "eid-ua-history 1";

bool parse_size(std::string_view text, std::size_t& out) {
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

bool save_domain_history(const DomainHistory& history,
                         const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << kDomainMagic << '\n';
  out << "days " << history.days_ingested() << '\n';
  for (const auto& domain : history.domains()) out << domain << '\n';
  return static_cast<bool>(out);
}

std::optional<DomainHistory> load_domain_history(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != kDomainMagic) return std::nullopt;
  if (!std::getline(in, line)) return std::nullopt;
  const auto header = util::split(line, ' ');
  std::size_t days = 0;
  if (header.size() != 2 || header[0] != "days" || !parse_size(header[1], days)) {
    return std::nullopt;
  }
  DomainHistory::DomainSet domains;
  while (std::getline(in, line)) {
    if (!line.empty()) domains.insert(line);
  }
  DomainHistory history;
  history.restore(std::move(domains), days);
  return history;
}

bool save_ua_history(const UaHistory& history,
                     const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << kUaMagic << '\n';
  out << "threshold " << history.rare_threshold() << '\n';
  bool ok = true;
  history.for_each_entry([&](const std::string& ua, bool popular,
                             const std::unordered_set<std::string>& hosts) {
    // UA strings containing control characters cannot round-trip through
    // the line format; skip them (they are pathological inputs anyway).
    if (ua.find('\t') != std::string::npos || ua.find('\n') != std::string::npos) {
      return;
    }
    if (popular) {
      out << "P\t" << ua << '\n';
    } else {
      out << "R\t" << ua;
      for (const auto& host : hosts) out << '\t' << host;
      out << '\n';
    }
    ok = ok && static_cast<bool>(out);
  });
  return ok && static_cast<bool>(out);
}

std::optional<UaHistory> load_ua_history(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != kUaMagic) return std::nullopt;
  if (!std::getline(in, line)) return std::nullopt;
  const auto header = util::split(line, ' ');
  std::size_t threshold = 0;
  if (header.size() != 2 || header[0] != "threshold" ||
      !parse_size(header[1], threshold) || threshold == 0) {
    return std::nullopt;
  }
  UaHistory history(threshold);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto fields = util::split(line, '\t');
    if (fields.size() < 2 || fields[1].empty()) return std::nullopt;
    const std::string ua(fields[1]);
    if (fields[0] == "P") {
      history.restore_entry(ua, true, {});
    } else if (fields[0] == "R") {
      std::unordered_set<std::string> hosts;
      for (std::size_t i = 2; i < fields.size(); ++i) {
        hosts.insert(std::string(fields[i]));
      }
      history.restore_entry(ua, false, std::move(hosts));
    } else {
      return std::nullopt;
    }
  }
  return history;
}

}  // namespace eid::profile
