#include "profile/domain_history.h"

namespace eid::profile {

RareExtraction extract_rare_destinations(const graph::DayGraph& graph,
                                         const DomainHistory& history,
                                         std::size_t popularity_threshold) {
  RareExtraction out;
  out.total_domains = graph.domain_count();
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    if (!history.is_new(graph.domain_name(d))) continue;
    ++out.new_domains;
    if (graph.domain_hosts(d).size() < popularity_threshold) {
      out.rare_domains.push_back(d);
    }
  }
  return out;
}

void update_history(DomainHistory& history, const graph::DayGraph& graph) {
  std::vector<std::string> domains;
  domains.reserve(graph.domain_count());
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    domains.push_back(graph.domain_name(d));
  }
  history.update(domains);
}

}  // namespace eid::profile
