#include "profile/domain_history.h"

#include "util/executor.h"

namespace eid::profile {

RareExtraction extract_rare_destinations(const graph::DayGraph& graph,
                                         const DomainHistory& history,
                                         std::size_t popularity_threshold,
                                         std::size_t n_threads,
                                         util::Executor* executor) {
  RareExtraction out;
  const std::size_t n = graph.domain_count();
  out.total_domains = n;

  // Each contiguous id range scans independently (history is read-only)
  // and emits its rare ids ascending; concatenating in range order equals
  // the sequential ascending-id scan for any thread count.
  struct RangeResult {
    std::vector<graph::DomainId> rare;
    std::size_t new_domains = 0;
  };
  std::vector<RangeResult> ranges(util::range_count(n, n_threads));
  util::parallel_ranges(
      executor, n, n_threads,
      [&](std::size_t range, std::size_t begin, std::size_t end) {
        RangeResult& result = ranges[range];
        for (std::size_t i = begin; i < end; ++i) {
          const auto d = static_cast<graph::DomainId>(i);
          if (!history.is_new(graph.domain_name(d))) continue;
          ++result.new_domains;
          if (graph.domain_hosts(d).size() < popularity_threshold) {
            result.rare.push_back(d);
          }
        }
      });
  for (const RangeResult& result : ranges) {
    out.new_domains += result.new_domains;
    out.rare_domains.insert(out.rare_domains.end(), result.rare.begin(),
                            result.rare.end());
  }
  return out;
}

void update_history(DomainHistory& history, const graph::DayGraph& graph) {
  std::vector<std::string> domains;
  domains.reserve(graph.domain_count());
  for (graph::DomainId d = 0; d < graph.domain_count(); ++d) {
    domains.push_back(graph.domain_name(d));
  }
  history.update(domains);
}

}  // namespace eid::profile
