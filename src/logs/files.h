// File-based log ingestion and dataset export. Production deployments read
// the previous day's logs from disk (§III-E: the system "analyzes log data
// collected at the enterprise border on a regular basis"); these helpers
// stream TSV files of DnsRecord / ProxyRecord lines with per-line error
// accounting (a malformed line must never abort a multi-gigabyte ingest).
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "logs/dhcp.h"
#include "logs/records.h"

namespace eid::logs {

/// Outcome of reading one log file.
struct FileReadStats {
  std::size_t lines = 0;
  std::size_t parsed = 0;
  std::size_t malformed = 0;
  bool opened = false;
};

/// Read a TSV file of DNS records (format_dns_line format). Malformed
/// lines are counted and skipped. Empty lines are ignored.
std::vector<DnsRecord> read_dns_file(const std::filesystem::path& path,
                                     FileReadStats* stats = nullptr);

/// Read a TSV file of proxy records (format_proxy_line format).
std::vector<ProxyRecord> read_proxy_file(const std::filesystem::path& path,
                                         FileReadStats* stats = nullptr);

/// Write records to a TSV file; returns false on I/O failure.
bool write_dns_file(const std::filesystem::path& path,
                    const std::vector<DnsRecord>& records);
bool write_proxy_file(const std::filesystem::path& path,
                      const std::vector<ProxyRecord>& records);

/// DHCP lease file: "ip\tstart\tend\thostname" per line.
bool write_dhcp_file(const std::filesystem::path& path,
                     const std::vector<DhcpLease>& leases);
std::vector<DhcpLease> read_dhcp_file(const std::filesystem::path& path,
                                      FileReadStats* stats = nullptr);

}  // namespace eid::logs
