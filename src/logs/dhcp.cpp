#include "logs/dhcp.h"

#include <algorithm>

namespace eid::logs {

void DhcpTable::add_lease(DhcpLease lease) {
  auto& slot = by_ip_[lease.ip];
  if (!slot.leases.empty() && lease.start < slot.leases.back().start) {
    slot.sorted = false;
  }
  slot.leases.push_back(std::move(lease));
  ++count_;
}

std::optional<std::string> DhcpTable::resolve(const std::string& ip,
                                              util::TimePoint ts) const {
  auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) return std::nullopt;
  auto& slot = it->second;
  if (!slot.sorted) {
    std::stable_sort(slot.leases.begin(), slot.leases.end(),
                     [](const DhcpLease& a, const DhcpLease& b) {
                       return a.start < b.start;
                     });
    slot.sorted = true;
  }
  // Last lease with start <= ts; later entries win on overlap.
  auto upper = std::upper_bound(
      slot.leases.begin(), slot.leases.end(), ts,
      [](util::TimePoint t, const DhcpLease& lease) { return t < lease.start; });
  while (upper != slot.leases.begin()) {
    --upper;
    if (ts < upper->end) return upper->hostname;
    if (upper->start <= ts) break;  // gap: ts after this lease ended
  }
  return std::nullopt;
}

}  // namespace eid::logs
