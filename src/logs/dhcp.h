// DHCP/VPN lease resolution (§IV-A): the AC dataset assigns most of the IP
// space dynamically, so proxy source addresses must be converted to stable
// hostnames by joining against the organization's DHCP and VPN logs.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace eid::logs {

/// One address lease: `ip` belonged to `hostname` during [start, end).
struct DhcpLease {
  std::string ip;
  util::TimePoint start = 0;
  util::TimePoint end = 0;
  std::string hostname;
};

/// Point-in-time lookup structure over DHCP/VPN leases.
class DhcpTable {
 public:
  /// Add a lease. Leases for the same IP may abut but must not overlap;
  /// overlapping adds keep the later lease (later log lines win, matching
  /// how DHCP servers reissue addresses).
  void add_lease(DhcpLease lease);

  /// Hostname holding `ip` at time `ts`, if any lease covers it.
  std::optional<std::string> resolve(const std::string& ip,
                                     util::TimePoint ts) const;

  std::size_t lease_count() const { return count_; }

  /// Visit every lease (persistence/export). Order is unspecified.
  template <typename Fn>
  void for_each_lease(Fn&& fn) const {
    for (const auto& [ip, slot] : by_ip_) {
      for (const DhcpLease& lease : slot.leases) fn(lease);
    }
  }

 private:
  // Per-IP leases sorted by start time (sorted lazily on first lookup after
  // a mutation burst; log ingestion is append-heavy then read-heavy).
  struct PerIp {
    std::vector<DhcpLease> leases;
    bool sorted = true;
  };
  mutable std::unordered_map<std::string, PerIp> by_ip_;
  std::size_t count_ = 0;
};

}  // namespace eid::logs
