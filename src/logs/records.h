// Log record types for the two data sources evaluated in the paper:
// anonymized DNS logs (the LANL dataset) and enterprise web-proxy logs
// (the AC dataset). Both reduce to a common ConnEvent stream that the
// profiling, timing-analysis and feature layers consume.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/ipv4.h"
#include "util/time.h"

namespace eid::logs {

/// DNS query types we distinguish; the reduction step keeps only A records
/// (§IV-A: "we first restrict our analysis only to A records").
enum class DnsType : std::uint8_t { A, AAAA, TXT, PTR, MX, CNAME, SRV, Other };

const char* dns_type_name(DnsType type);

/// One DNS query joined with its response (when one was observed).
struct DnsRecord {
  util::TimePoint ts = 0;
  std::string src;               ///< internal source host (anonymized IP in LANL)
  std::string domain;            ///< queried name, unfolded
  DnsType type = DnsType::A;
  std::optional<util::Ipv4> response_ip;  ///< A-record answer, when present
};

/// HTTP methods that appear in enterprise proxy logs.
enum class HttpMethod : std::uint8_t { Get, Post, Head, Put, Connect, Other };

const char* http_method_name(HttpMethod method);

/// One web-proxy log line (AC dataset flavor).
struct ProxyRecord {
  util::TimePoint ts = 0;        ///< collector-local until normalization
  std::string collector;         ///< collection device id (drives timezone fixup)
  std::string src_ip;            ///< DHCP/VPN-assigned source address
  std::string hostname;          ///< resolved source hostname (after normalization)
  std::string domain;            ///< destination domain, unfolded ("" if IP literal)
  std::optional<util::Ipv4> dest_ip;
  std::string url_path;          ///< path + query portion of the URL
  HttpMethod method = HttpMethod::Get;
  int status = 200;
  std::string user_agent;        ///< "" when the client sent no UA
  std::string referer;           ///< "" when the request carried no referer
};

/// Canonical reduced event: one observed connection from an internal host to
/// an external (folded) domain. DNS reduction produces these without HTTP
/// context; proxy reduction fills every field.
struct ConnEvent {
  util::TimePoint ts = 0;
  std::string host;              ///< stable internal host identifier
  std::string domain;            ///< folded destination domain
  std::optional<util::Ipv4> dest_ip;
  std::string user_agent;        ///< "" = none / not available (DNS)
  bool has_referer = false;      ///< always false for DNS-derived events
  bool has_http_context = false; ///< true iff derived from proxy logs
};

}  // namespace eid::logs
