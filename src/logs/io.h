// Tab-separated serialization for log records, so examples and operators can
// persist simulated datasets and re-ingest them like real log files.
// Parsers are total: malformed lines yield std::nullopt and are counted by
// callers rather than aborting a multi-terabyte ingest.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "logs/records.h"

namespace eid::logs {

/// DnsRecord <-> "ts\tsrc\tdomain\ttype\tresponse_ip".
std::string format_dns_line(const DnsRecord& rec);
std::optional<DnsRecord> parse_dns_line(std::string_view line);

/// ProxyRecord <-> TSV with all HTTP context fields.
std::string format_proxy_line(const ProxyRecord& rec);
std::optional<ProxyRecord> parse_proxy_line(std::string_view line);

}  // namespace eid::logs
