#include "logs/folding.h"

#include <array>
#include <vector>

#include "util/strings.h"

namespace eid::logs {
namespace {

// A deliberately small public-suffix sample: enough for realistic folding of
// enterprise traffic without shipping the full PSL. Checked against the last
// two labels of a name.
constexpr std::array<std::string_view, 12> kTwoLabelSuffixes = {
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.au", "net.au",
    "co.jp", "com.br", "com.cn", "co.in", "co.kr", "com.mx",
};

}  // namespace

bool has_two_label_public_suffix(std::string_view domain) {
  const auto labels = util::split(domain, '.');
  if (labels.size() < 2) return false;
  const std::string tail = std::string(labels[labels.size() - 2]) + "." +
                           std::string(labels[labels.size() - 1]);
  for (const auto suffix : kTwoLabelSuffixes) {
    if (tail == suffix) return true;
  }
  return false;
}

std::string fold_domain(std::string_view domain, FoldLevel level) {
  // Strip root-label dots entirely so degenerate inputs (".", "..") fold
  // to the empty string and folding stays idempotent.
  while (!domain.empty() && domain.back() == '.') domain.remove_suffix(1);
  while (!domain.empty() && domain.front() == '.') domain.remove_prefix(1);
  const auto labels = util::split(domain, '.');
  std::size_t keep = static_cast<std::size_t>(level);
  if (has_two_label_public_suffix(domain)) ++keep;
  if (labels.size() <= keep) return util::to_lower(domain);
  std::string out;
  for (std::size_t i = labels.size() - keep; i < labels.size(); ++i) {
    if (!out.empty()) out += '.';
    out += util::to_lower(labels[i]);
  }
  return out;
}

}  // namespace eid::logs
