// Data normalization and reduction (§IV-A).
//
// DNS (LANL): keep only A records, drop queries for internal resources and
// queries issued by internal servers, fold domains. Each stage's record and
// distinct-domain counts are exposed so Fig. 2 (domains remaining after each
// reduction step) can be regenerated.
//
// Proxy (AC): normalize collector-local timestamps to UTC, resolve DHCP/VPN
// source addresses to stable hostnames, drop IP-literal destinations, fold
// domains, and extract the fields used downstream (UA, referer, status).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "logs/dhcp.h"
#include "logs/folding.h"
#include "logs/records.h"

namespace eid::logs {

/// Configuration for LANL-style DNS reduction.
struct DnsReductionConfig {
  /// Suffixes (folded or unfolded) identifying internal resources to drop,
  /// e.g. {"lanl.internal"}.
  std::vector<std::string> internal_suffixes;
  /// Source hosts that are internal servers (their queries are dropped,
  /// since the detector targets client compromise).
  std::unordered_set<std::string> internal_servers;
  /// LANL domain names are anonymized, so the paper folds to third level.
  FoldLevel fold_level = FoldLevel::ThirdLevel;
};

/// Per-stage counters matching the series of Fig. 2.
struct DnsReductionStats {
  std::size_t total_records = 0;
  std::size_t a_records = 0;
  std::size_t after_internal_query_filter = 0;
  std::size_t after_server_filter = 0;

  /// Distinct folded domains surviving each stage.
  std::size_t domains_all = 0;
  std::size_t domains_after_internal_filter = 0;
  std::size_t domains_after_server_filter = 0;
  std::size_t hosts_after_server_filter = 0;
};

/// Reduce one day of DNS records to the canonical event stream.
std::vector<ConnEvent> reduce_dns(std::span<const DnsRecord> records,
                                  const DnsReductionConfig& config,
                                  DnsReductionStats* stats = nullptr);

/// Configuration for AC-style proxy normalization + reduction.
struct ProxyReductionConfig {
  /// UTC offset in seconds for each collection device (collector id -> offset
  /// to SUBTRACT from local timestamps). Unknown collectors are assumed UTC.
  std::vector<std::pair<std::string, int>> collector_utc_offsets;
  FoldLevel fold_level = FoldLevel::SecondLevel;
  /// When a source address has no DHCP/VPN lease, fall back to using the raw
  /// IP as the host identifier instead of dropping the record.
  bool keep_unresolved_sources = true;
};

struct ProxyReductionStats {
  std::size_t total_records = 0;
  std::size_t ip_literal_destinations = 0;  ///< dropped (§IV-A)
  std::size_t resolved_sources = 0;         ///< DHCP/VPN lease matched
  std::size_t unresolved_sources = 0;
  std::size_t kept_records = 0;
  std::size_t domains_all = 0;
  std::size_t hosts_all = 0;
};

/// Normalize and reduce one day of proxy records.
std::vector<ConnEvent> reduce_proxy(std::span<const ProxyRecord> records,
                                    const DhcpTable& leases,
                                    const ProxyReductionConfig& config,
                                    ProxyReductionStats* stats = nullptr);

}  // namespace eid::logs
