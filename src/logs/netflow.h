// NetFlow support (§II-C: the framework targets "general patterns of
// infections ... common in various types of network data (e.g., NetFlow,
// DNS logs, web proxies logs, full packet capture)").
//
// Flow records carry no domain names, so attribution goes through a
// passive-DNS cache built from the enterprise's DNS logs: each A answer
// (domain -> IP at time t) is recorded, and a flow to dst_ip at time ts is
// attributed to the most recent domain that resolved to that IP at or
// before ts. This correctly tracks attacker IP flux — when a domain moves,
// later flows attribute to the new tenant of the old address.
//
// Reduction keeps TCP flows to the web ports (80/443 — the channels
// enterprise firewalls leave open, §II-A), drops internal destinations and
// unattributable flows, and emits the same ConnEvent stream as the DNS and
// proxy reducers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "logs/folding.h"
#include "logs/records.h"

namespace eid::logs {

/// One unidirectional flow summary (v5-style subset).
struct FlowRecord {
  util::TimePoint ts = 0;        ///< flow start
  std::string src;               ///< internal source host identifier
  util::Ipv4 dst_ip{};
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 6;     ///< IPPROTO_TCP by default
  std::uint64_t bytes = 0;
  std::uint32_t packets = 0;
};

/// Passive-DNS cache: domain -> IP observations over time, queried in
/// reverse (IP at time t -> domain).
class PassiveDnsCache {
 public:
  /// Record one A answer: `domain` resolved to `ip` at time `ts`.
  void observe(const std::string& domain, util::Ipv4 ip, util::TimePoint ts);

  /// Ingest every answered A record of a day of DNS logs.
  void observe_day(std::span<const DnsRecord> records);

  /// Domain most recently seen resolving to `ip` at or before `ts`;
  /// nullopt when the IP was never observed (or only later than ts).
  std::optional<std::string> attribute(util::Ipv4 ip, util::TimePoint ts) const;

  std::size_t observation_count() const { return observations_; }

 private:
  struct Mapping {
    util::TimePoint ts;
    std::string domain;
  };
  struct PerIp {
    std::vector<Mapping> mappings;  ///< sorted by ts (lazy)
    bool sorted = true;
  };
  mutable std::unordered_map<util::Ipv4, PerIp> by_ip_;
  std::size_t observations_ = 0;
};

struct FlowReductionConfig {
  /// Destination ports kept (web channels by default).
  std::vector<std::uint16_t> ports = {80, 443};
  FoldLevel fold_level = FoldLevel::SecondLevel;
  bool drop_private_destinations = true;  ///< internal traffic is not our target
};

struct FlowReductionStats {
  std::size_t total_flows = 0;
  std::size_t port_filtered = 0;        ///< wrong port / protocol
  std::size_t internal_destinations = 0;
  std::size_t unattributed = 0;         ///< no passive-DNS mapping
  std::size_t kept = 0;
};

/// Reduce one day of flows to the canonical event stream.
std::vector<ConnEvent> reduce_flows(std::span<const FlowRecord> flows,
                                    const PassiveDnsCache& pdns,
                                    const FlowReductionConfig& config,
                                    FlowReductionStats* stats = nullptr);

}  // namespace eid::logs
