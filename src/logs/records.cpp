#include "logs/records.h"

namespace eid::logs {

const char* dns_type_name(DnsType type) {
  switch (type) {
    case DnsType::A: return "A";
    case DnsType::AAAA: return "AAAA";
    case DnsType::TXT: return "TXT";
    case DnsType::PTR: return "PTR";
    case DnsType::MX: return "MX";
    case DnsType::CNAME: return "CNAME";
    case DnsType::SRV: return "SRV";
    case DnsType::Other: return "OTHER";
  }
  return "OTHER";
}

const char* http_method_name(HttpMethod method) {
  switch (method) {
    case HttpMethod::Get: return "GET";
    case HttpMethod::Post: return "POST";
    case HttpMethod::Head: return "HEAD";
    case HttpMethod::Put: return "PUT";
    case HttpMethod::Connect: return "CONNECT";
    case HttpMethod::Other: return "OTHER";
  }
  return "OTHER";
}

}  // namespace eid::logs
