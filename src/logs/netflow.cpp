#include "logs/netflow.h"

#include <algorithm>

namespace eid::logs {

void PassiveDnsCache::observe(const std::string& domain, util::Ipv4 ip,
                              util::TimePoint ts) {
  PerIp& slot = by_ip_[ip];
  if (!slot.mappings.empty() && ts < slot.mappings.back().ts) slot.sorted = false;
  // Skip consecutive duplicates (beaconing hosts re-resolve constantly).
  // The run keeps its EARLIEST timestamp: attribution asks "who held this
  // IP at or before t", and the answer has been this domain since the
  // first observation of the run.
  if (!slot.mappings.empty() && slot.mappings.back().domain == domain &&
      slot.sorted) {
    return;
  }
  slot.mappings.push_back(Mapping{ts, domain});
  ++observations_;
}

void PassiveDnsCache::observe_day(std::span<const DnsRecord> records) {
  for (const DnsRecord& rec : records) {
    if (rec.type == DnsType::A && rec.response_ip) {
      observe(rec.domain, *rec.response_ip, rec.ts);
    }
  }
}

std::optional<std::string> PassiveDnsCache::attribute(util::Ipv4 ip,
                                                      util::TimePoint ts) const {
  auto it = by_ip_.find(ip);
  if (it == by_ip_.end()) return std::nullopt;
  PerIp& slot = it->second;
  if (!slot.sorted) {
    std::stable_sort(
        slot.mappings.begin(), slot.mappings.end(),
        [](const Mapping& a, const Mapping& b) { return a.ts < b.ts; });
    slot.sorted = true;
  }
  auto upper = std::upper_bound(
      slot.mappings.begin(), slot.mappings.end(), ts,
      [](util::TimePoint t, const Mapping& m) { return t < m.ts; });
  if (upper == slot.mappings.begin()) return std::nullopt;
  return std::prev(upper)->domain;
}

std::vector<ConnEvent> reduce_flows(std::span<const FlowRecord> flows,
                                    const PassiveDnsCache& pdns,
                                    const FlowReductionConfig& config,
                                    FlowReductionStats* stats) {
  FlowReductionStats local;
  FlowReductionStats& s = stats ? *stats : local;
  s = FlowReductionStats{};
  s.total_flows = flows.size();

  std::vector<ConnEvent> out;
  out.reserve(flows.size());
  for (const FlowRecord& flow : flows) {
    const bool port_ok =
        flow.protocol == 6 &&
        std::find(config.ports.begin(), config.ports.end(), flow.dst_port) !=
            config.ports.end();
    if (!port_ok) {
      ++s.port_filtered;
      continue;
    }
    if (config.drop_private_destinations && util::is_private_ipv4(flow.dst_ip)) {
      ++s.internal_destinations;
      continue;
    }
    const auto domain = pdns.attribute(flow.dst_ip, flow.ts);
    if (!domain) {
      ++s.unattributed;
      continue;
    }
    ConnEvent event;
    event.ts = flow.ts;
    event.host = flow.src;
    event.domain = fold_domain(*domain, config.fold_level);
    event.dest_ip = flow.dst_ip;
    event.has_http_context = false;  // flows carry no UA/referer
    out.push_back(std::move(event));
    ++s.kept;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ConnEvent& a, const ConnEvent& b) { return a.ts < b.ts; });
  return out;
}

}  // namespace eid::logs
