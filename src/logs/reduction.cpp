#include "logs/reduction.h"

#include <algorithm>

#include "util/strings.h"

namespace eid::logs {
namespace {

bool matches_internal_suffix(const std::string& domain,
                             const std::vector<std::string>& suffixes) {
  for (const auto& suffix : suffixes) {
    if (domain == suffix || util::ends_with(domain, "." + suffix)) return true;
  }
  return false;
}

}  // namespace

std::vector<ConnEvent> reduce_dns(std::span<const DnsRecord> records,
                                  const DnsReductionConfig& config,
                                  DnsReductionStats* stats) {
  DnsReductionStats local;
  DnsReductionStats& s = stats ? *stats : local;
  s = DnsReductionStats{};
  s.total_records = records.size();

  std::unordered_set<std::string> domains_all;
  std::unordered_set<std::string> domains_internal;
  std::unordered_set<std::string> domains_final;
  std::unordered_set<std::string> hosts_final;

  std::vector<ConnEvent> out;
  out.reserve(records.size());
  for (const DnsRecord& rec : records) {
    if (rec.type != DnsType::A) continue;
    ++s.a_records;
    const std::string folded = fold_domain(rec.domain, config.fold_level);
    domains_all.insert(folded);
    if (matches_internal_suffix(folded, config.internal_suffixes)) continue;
    ++s.after_internal_query_filter;
    domains_internal.insert(folded);
    if (config.internal_servers.contains(rec.src)) continue;
    ++s.after_server_filter;
    domains_final.insert(folded);
    hosts_final.insert(rec.src);
    ConnEvent ev;
    ev.ts = rec.ts;
    ev.host = rec.src;
    ev.domain = folded;
    ev.dest_ip = rec.response_ip;
    ev.has_http_context = false;
    out.push_back(std::move(ev));
  }
  s.domains_all = domains_all.size();
  s.domains_after_internal_filter = domains_internal.size();
  s.domains_after_server_filter = domains_final.size();
  s.hosts_after_server_filter = hosts_final.size();
  std::stable_sort(out.begin(), out.end(),
                   [](const ConnEvent& a, const ConnEvent& b) { return a.ts < b.ts; });
  return out;
}

std::vector<ConnEvent> reduce_proxy(std::span<const ProxyRecord> records,
                                    const DhcpTable& leases,
                                    const ProxyReductionConfig& config,
                                    ProxyReductionStats* stats) {
  ProxyReductionStats local;
  ProxyReductionStats& s = stats ? *stats : local;
  s = ProxyReductionStats{};
  s.total_records = records.size();

  std::unordered_map<std::string, int> offsets(config.collector_utc_offsets.begin(),
                                               config.collector_utc_offsets.end());
  std::unordered_set<std::string> domains;
  std::unordered_set<std::string> hosts;

  std::vector<ConnEvent> out;
  out.reserve(records.size());
  for (const ProxyRecord& rec : records) {
    // The paper drops destinations that are raw IP addresses.
    if (rec.domain.empty() || util::parse_ipv4(rec.domain).has_value()) {
      ++s.ip_literal_destinations;
      continue;
    }
    util::TimePoint ts = rec.ts;
    if (auto it = offsets.find(rec.collector); it != offsets.end()) {
      ts -= it->second;
    }
    std::string host;
    if (!rec.hostname.empty()) {
      host = rec.hostname;
      ++s.resolved_sources;
    } else if (auto resolved = leases.resolve(rec.src_ip, ts)) {
      host = *resolved;
      ++s.resolved_sources;
    } else {
      ++s.unresolved_sources;
      if (!config.keep_unresolved_sources) continue;
      host = rec.src_ip;
    }
    ConnEvent ev;
    ev.ts = ts;
    ev.host = std::move(host);
    ev.domain = fold_domain(rec.domain, config.fold_level);
    ev.dest_ip = rec.dest_ip;
    ev.user_agent = rec.user_agent;
    ev.has_referer = !rec.referer.empty();
    ev.has_http_context = true;
    domains.insert(ev.domain);
    hosts.insert(ev.host);
    out.push_back(std::move(ev));
    ++s.kept_records;
  }
  s.domains_all = domains.size();
  s.hosts_all = hosts.size();
  std::stable_sort(out.begin(), out.end(),
                   [](const ConnEvent& a, const ConnEvent& b) { return a.ts < b.ts; });
  return out;
}

}  // namespace eid::logs
