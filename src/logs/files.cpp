#include "logs/files.h"

#include <charconv>
#include <fstream>

#include "logs/io.h"
#include "util/strings.h"

namespace eid::logs {
namespace {

template <typename Record, typename ParseFn>
std::vector<Record> read_lines(const std::filesystem::path& path,
                               FileReadStats* stats, ParseFn&& parse) {
  FileReadStats local;
  FileReadStats& s = stats ? *stats : local;
  s = FileReadStats{};
  std::vector<Record> out;
  std::ifstream in(path);
  if (!in) return out;
  s.opened = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++s.lines;
    if (auto rec = parse(line)) {
      out.push_back(std::move(*rec));
      ++s.parsed;
    } else {
      ++s.malformed;
    }
  }
  return out;
}

bool parse_i64_field(std::string_view text, std::int64_t& out) {
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc() && ptr == end;
}

std::optional<DhcpLease> parse_dhcp_line(std::string_view line) {
  const auto fields = util::split(line, '\t');
  if (fields.size() != 4) return std::nullopt;
  DhcpLease lease;
  if (fields[0].empty() || fields[3].empty()) return std::nullopt;
  lease.ip = std::string(fields[0]);
  if (!parse_i64_field(fields[1], lease.start)) return std::nullopt;
  if (!parse_i64_field(fields[2], lease.end)) return std::nullopt;
  if (lease.end < lease.start) return std::nullopt;
  lease.hostname = std::string(fields[3]);
  return lease;
}

}  // namespace

std::vector<DnsRecord> read_dns_file(const std::filesystem::path& path,
                                     FileReadStats* stats) {
  return read_lines<DnsRecord>(path, stats,
                               [](const std::string& l) { return parse_dns_line(l); });
}

std::vector<ProxyRecord> read_proxy_file(const std::filesystem::path& path,
                                         FileReadStats* stats) {
  return read_lines<ProxyRecord>(
      path, stats, [](const std::string& l) { return parse_proxy_line(l); });
}

std::vector<DhcpLease> read_dhcp_file(const std::filesystem::path& path,
                                      FileReadStats* stats) {
  return read_lines<DhcpLease>(
      path, stats, [](const std::string& l) { return parse_dhcp_line(l); });
}

bool write_dns_file(const std::filesystem::path& path,
                    const std::vector<DnsRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  for (const auto& rec : records) out << format_dns_line(rec) << '\n';
  return static_cast<bool>(out);
}

bool write_proxy_file(const std::filesystem::path& path,
                      const std::vector<ProxyRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  for (const auto& rec : records) out << format_proxy_line(rec) << '\n';
  return static_cast<bool>(out);
}

bool write_dhcp_file(const std::filesystem::path& path,
                     const std::vector<DhcpLease>& leases) {
  std::ofstream out(path);
  if (!out) return false;
  for (const auto& lease : leases) {
    out << lease.ip << '\t' << lease.start << '\t' << lease.end << '\t'
        << lease.hostname << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace eid::logs
