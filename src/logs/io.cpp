#include "logs/io.h"

#include <charconv>

#include "util/strings.h"

namespace eid::logs {
namespace {

bool parse_i64(std::string_view text, std::int64_t& out) {
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_int(std::string_view text, int& out) {
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc() && ptr == end;
}

DnsType dns_type_from(std::string_view text) {
  if (text == "A") return DnsType::A;
  if (text == "AAAA") return DnsType::AAAA;
  if (text == "TXT") return DnsType::TXT;
  if (text == "PTR") return DnsType::PTR;
  if (text == "MX") return DnsType::MX;
  if (text == "CNAME") return DnsType::CNAME;
  if (text == "SRV") return DnsType::SRV;
  return DnsType::Other;
}

HttpMethod method_from(std::string_view text) {
  if (text == "GET") return HttpMethod::Get;
  if (text == "POST") return HttpMethod::Post;
  if (text == "HEAD") return HttpMethod::Head;
  if (text == "PUT") return HttpMethod::Put;
  if (text == "CONNECT") return HttpMethod::Connect;
  return HttpMethod::Other;
}

}  // namespace

std::string format_dns_line(const DnsRecord& rec) {
  std::string out = std::to_string(rec.ts);
  out += '\t';
  out += rec.src;
  out += '\t';
  out += rec.domain;
  out += '\t';
  out += dns_type_name(rec.type);
  out += '\t';
  out += rec.response_ip ? util::format_ipv4(*rec.response_ip) : "-";
  return out;
}

std::optional<DnsRecord> parse_dns_line(std::string_view line) {
  const auto fields = util::split(line, '\t');
  if (fields.size() != 5) return std::nullopt;
  DnsRecord rec;
  if (!parse_i64(fields[0], rec.ts)) return std::nullopt;
  if (fields[1].empty() || fields[2].empty()) return std::nullopt;
  rec.src = std::string(fields[1]);
  rec.domain = std::string(fields[2]);
  rec.type = dns_type_from(fields[3]);
  if (fields[4] != "-") {
    rec.response_ip = util::parse_ipv4(fields[4]);
    if (!rec.response_ip) return std::nullopt;
  }
  return rec;
}

std::string format_proxy_line(const ProxyRecord& rec) {
  std::string out = std::to_string(rec.ts);
  const auto append = [&out](std::string_view field) {
    out += '\t';
    out += field.empty() ? std::string_view("-") : field;
  };
  append(rec.collector);
  append(rec.src_ip);
  append(rec.hostname);
  append(rec.domain);
  append(rec.dest_ip ? util::format_ipv4(*rec.dest_ip) : "-");
  append(rec.url_path);
  append(http_method_name(rec.method));
  append(std::to_string(rec.status));
  append(rec.user_agent);
  append(rec.referer);
  return out;
}

std::optional<ProxyRecord> parse_proxy_line(std::string_view line) {
  const auto fields = util::split(line, '\t');
  if (fields.size() != 11) return std::nullopt;
  const auto value = [](std::string_view field) {
    return field == "-" ? std::string() : std::string(field);
  };
  ProxyRecord rec;
  if (!parse_i64(fields[0], rec.ts)) return std::nullopt;
  rec.collector = value(fields[1]);
  rec.src_ip = value(fields[2]);
  rec.hostname = value(fields[3]);
  rec.domain = value(fields[4]);
  if (fields[5] != "-") {
    rec.dest_ip = util::parse_ipv4(fields[5]);
    if (!rec.dest_ip) return std::nullopt;
  }
  rec.url_path = value(fields[6]);
  rec.method = method_from(fields[7]);
  if (!parse_int(fields[8], rec.status)) return std::nullopt;
  rec.user_agent = value(fields[9]);
  rec.referer = value(fields[10]);
  return rec;
}

}  // namespace eid::logs
