// Domain folding (§IV-A): destinations are "folded" to their second-level
// domain (news.nbc.com -> nbc.com) on the assumption that the second level
// captures the responsible organization. For anonymized data without
// top-level information (LANL) the paper conservatively folds to the third
// level instead; the fold level is a parameter here.
#pragma once

#include <string>
#include <string_view>

namespace eid::logs {

/// Number of labels kept from the right when folding.
enum class FoldLevel { SecondLevel = 2, ThirdLevel = 3 };

/// Fold a domain name to the given level. Multi-label public suffixes that
/// commonly appear in enterprise traffic (co.uk, com.au, ...) keep one extra
/// label so "news.bbc.co.uk" folds to "bbc.co.uk" rather than "co.uk".
/// Names with fewer labels than the fold level are returned unchanged.
/// Folding is idempotent: fold(fold(x)) == fold(x).
std::string fold_domain(std::string_view domain,
                        FoldLevel level = FoldLevel::SecondLevel);

/// True if the registrable suffix of the domain spans two labels (co.uk...).
bool has_two_label_public_suffix(std::string_view domain);

}  // namespace eid::logs
