#include "timing/periodicity.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "timing/clustering.h"

namespace eid::timing {

AutomationResult PeriodicityDetector::test(
    std::span<const util::TimePoint> timestamps) const {
  return test_intervals(inter_connection_intervals(timestamps));
}

AutomationResult PeriodicityDetector::test_intervals(
    std::span<const double> intervals) const {
  AutomationResult result;
  result.interval_count = intervals.size();
  if (intervals.size() < params_.min_intervals) return result;
  const Histogram h = cluster_intervals(intervals, params_.bin_width_seconds);
  const Bin& top = h.top_bin();
  const Histogram reference = periodic_reference(top.hub);
  result.period = top.hub;
  result.divergence = params_.metric == HistogramMetric::Jeffrey
                          ? jeffrey_divergence(h, reference)
                          : l1_distance(h, reference);
  result.automated = result.divergence <= params_.jeffrey_threshold;
  return result;
}

AutomationResult StdDevDetector::test(
    std::span<const util::TimePoint> timestamps) const {
  AutomationResult result;
  const auto intervals = inter_connection_intervals(timestamps);
  result.interval_count = intervals.size();
  if (intervals.size() < params_.min_intervals) return result;
  const double mean =
      std::accumulate(intervals.begin(), intervals.end(), 0.0) /
      static_cast<double>(intervals.size());
  if (mean <= 0.0) return result;
  double ss = 0.0;
  for (const double v : intervals) ss += (v - mean) * (v - mean);
  const double stddev = std::sqrt(ss / static_cast<double>(intervals.size()));
  result.period = mean;
  result.divergence = stddev / mean;
  result.automated = result.divergence <= params_.max_coeff_variation;
  return result;
}

namespace {

// Bin timestamps into a fixed-resolution 0/1 activity series starting at the
// first connection.
std::vector<double> activity_series(std::span<const util::TimePoint> timestamps,
                                    double slot_seconds, std::size_t max_slots) {
  std::vector<double> series;
  if (timestamps.empty()) return series;
  const util::TimePoint t0 = timestamps.front();
  std::size_t slots = 0;
  for (const util::TimePoint t : timestamps) {
    const auto slot =
        static_cast<std::size_t>(static_cast<double>(t - t0) / slot_seconds);
    if (slot >= max_slots) break;
    slots = std::max(slots, slot + 1);
  }
  series.assign(slots, 0.0);
  for (const util::TimePoint t : timestamps) {
    const auto slot =
        static_cast<std::size_t>(static_cast<double>(t - t0) / slot_seconds);
    if (slot < series.size()) series[slot] += 1.0;
  }
  return series;
}

}  // namespace

AutomationResult AutocorrDetector::test(
    std::span<const util::TimePoint> timestamps) const {
  AutomationResult result;
  result.interval_count = timestamps.size() < 2 ? 0 : timestamps.size() - 1;
  if (timestamps.size() < params_.min_connections) return result;
  const auto series = activity_series(timestamps, params_.slot_seconds, 1 << 20);
  const std::size_t n = series.size();
  if (n < 4) return result;
  const double mean = std::accumulate(series.begin(), series.end(), 0.0) /
                      static_cast<double>(n);
  double var = 0.0;
  for (const double v : series) var += (v - mean) * (v - mean);
  if (var <= 0.0) return result;
  double best = 0.0;
  double best_lag = 0.0;
  for (std::size_t lag = 1; lag <= n / 2; ++lag) {
    double acc = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      acc += (series[i] - mean) * (series[i + lag] - mean);
    }
    const double r = acc / var;
    if (r > best) {
      best = r;
      best_lag = static_cast<double>(lag) * params_.slot_seconds;
    }
  }
  result.period = best_lag;
  result.divergence = best;
  result.automated = best >= params_.min_correlation;
  return result;
}

void fft_radix2(std::vector<double>& re, std::vector<double>& im) {
  const std::size_t n = re.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * 3.141592653589793 / static_cast<double>(len);
    const double wr = std::cos(angle);
    const double wi = std::sin(angle);
    for (std::size_t i = 0; i < n; i += len) {
      double cur_r = 1.0;
      double cur_i = 0.0;
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::size_t a = i + k;
        const std::size_t b = i + k + len / 2;
        const double tr = re[b] * cur_r - im[b] * cur_i;
        const double ti = re[b] * cur_i + im[b] * cur_r;
        re[b] = re[a] - tr;
        im[b] = im[a] - ti;
        re[a] += tr;
        im[a] += ti;
        const double next_r = cur_r * wr - cur_i * wi;
        cur_i = cur_r * wi + cur_i * wr;
        cur_r = next_r;
      }
    }
  }
}

AutomationResult FftDetector::test(
    std::span<const util::TimePoint> timestamps) const {
  AutomationResult result;
  result.interval_count = timestamps.size() < 2 ? 0 : timestamps.size() - 1;
  if (timestamps.size() < params_.min_connections) return result;
  auto series = activity_series(timestamps, params_.slot_seconds, params_.fft_size);
  if (series.size() < 8) return result;
  series.resize(params_.fft_size, 0.0);
  const double mean = std::accumulate(series.begin(), series.end(), 0.0) /
                      static_cast<double>(series.size());
  std::vector<double> re(series.size());
  std::vector<double> im(series.size(), 0.0);
  for (std::size_t i = 0; i < series.size(); ++i) re[i] = series[i] - mean;
  fft_radix2(re, im);
  double total = 0.0;
  double peak = 0.0;
  std::size_t peak_index = 0;
  for (std::size_t i = 1; i < series.size() / 2; ++i) {
    const double power = re[i] * re[i] + im[i] * im[i];
    total += power;
    if (power > peak) {
      peak = power;
      peak_index = i;
    }
  }
  if (total <= 0.0 || peak_index == 0) return result;
  const double mean_power =
      total / static_cast<double>(series.size() / 2 - 1);
  result.period = static_cast<double>(series.size()) /
                  static_cast<double>(peak_index) * params_.slot_seconds;
  result.divergence = peak / mean_power;
  result.automated = result.divergence >= params_.min_peak_snr;
  return result;
}

}  // namespace eid::timing
