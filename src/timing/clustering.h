// Dynamic histogram binning (§IV-C): inter-connection intervals are
// clustered around "hubs" — the first interval seeds the first hub, each
// subsequent interval joins a cluster whose hub is within W seconds,
// otherwise it seeds a new cluster. Cluster hubs become histogram bins,
// which makes the divergence test robust to small attacker-introduced
// jitter without the alignment artifacts of statically defined bins.
#pragma once

#include <span>
#include <vector>

#include "timing/histogram.h"
#include "util/time.h"

namespace eid::timing {

/// Successive differences t[i+1] - t[i] of a sorted timestamp sequence.
std::vector<double> inter_connection_intervals(
    std::span<const util::TimePoint> timestamps);

/// Cluster intervals with the hub rule above; returns one bin per cluster in
/// hub creation order. `bin_width` is the W parameter of the paper.
Histogram cluster_intervals(std::span<const double> intervals, double bin_width);

/// Statically binned histogram (fixed-width bins anchored at zero) — the
/// strawman the paper argues against; kept for the ablation benchmark.
Histogram static_bins(std::span<const double> intervals, double bin_width);

}  // namespace eid::timing
