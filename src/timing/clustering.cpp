#include "timing/clustering.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace eid::timing {

std::vector<double> inter_connection_intervals(
    std::span<const util::TimePoint> timestamps) {
  std::vector<double> out;
  if (timestamps.size() < 2) return out;
  out.reserve(timestamps.size() - 1);
  for (std::size_t i = 1; i < timestamps.size(); ++i) {
    out.push_back(static_cast<double>(timestamps[i] - timestamps[i - 1]));
  }
  return out;
}

Histogram cluster_intervals(std::span<const double> intervals, double bin_width) {
  Histogram h;
  for (const double interval : intervals) {
    Bin* best = nullptr;
    double best_gap = bin_width;
    for (Bin& bin : h.bins) {
      const double gap = std::abs(interval - bin.hub);
      if (gap <= best_gap) {
        best_gap = gap;
        best = &bin;
      }
    }
    if (best != nullptr) {
      ++best->count;
    } else {
      h.bins.push_back(Bin{interval, 1});
    }
  }
  return h;
}

Histogram static_bins(std::span<const double> intervals, double bin_width) {
  std::map<long long, std::size_t> counts;
  for (const double interval : intervals) {
    const long long index =
        static_cast<long long>(std::floor(interval / bin_width));
    ++counts[index];
  }
  Histogram h;
  for (const auto& [index, count] : counts) {
    h.bins.push_back(Bin{(static_cast<double>(index) + 0.5) * bin_width, count});
  }
  return h;
}

}  // namespace eid::timing
