// The paper's detector of automated (beaconing) communication, plus the
// baseline detectors it is compared against in the ablation benches:
// standard deviation (the strawman §IV-C discards), autocorrelation
// (BotSniffer-style) and FFT spectral peak (BotFinder-style).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "timing/histogram.h"
#include "util/time.h"

namespace eid::timing {

/// Outcome of an automation test on one (host, domain) connection series.
struct AutomationResult {
  bool automated = false;
  double period = 0.0;      ///< dominant inter-connection interval, seconds
  double divergence = 0.0;  ///< statistic the decision was made on
  std::size_t interval_count = 0;
};

/// Statistical distance between the interval histogram and the periodic
/// reference. The paper uses the Jeffrey divergence and notes that L1 gave
/// "very similar" results (§IV-C); both are supported so the equivalence
/// can be checked (bench_ablation_periodicity).
enum class HistogramMetric { Jeffrey, L1 };

/// Dynamic-histogram periodicity detector (§IV-C). Connections between a
/// host and a domain are labeled automated when the chosen distance
/// between the dynamically-binned interval histogram and a periodic
/// reference at the dominant interval is at most `jeffrey_threshold`.
class PeriodicityDetector {
 public:
  struct Params {
    double bin_width_seconds = 10.0;   ///< W; paper selects 10 s (Table II)
    double jeffrey_threshold = 0.06;   ///< JT; paper selects 0.06 (Table II)
    std::size_t min_intervals = 4;     ///< fewer intervals => not automated
    HistogramMetric metric = HistogramMetric::Jeffrey;
  };

  PeriodicityDetector() = default;
  explicit PeriodicityDetector(Params params) : params_(params) {}

  /// Test a chronologically sorted series of connection timestamps.
  AutomationResult test(std::span<const util::TimePoint> timestamps) const;

  /// Test a precomputed interval sequence.
  AutomationResult test_intervals(std::span<const double> intervals) const;

  const Params& params() const { return params_; }

 private:
  Params params_{};
};

/// Baseline: label automated when the coefficient of variation
/// (stddev / mean) of the intervals is below a threshold. A single outlier
/// interval inflates the stddev, which is exactly the failure mode the
/// paper's dynamic histogram fixes.
class StdDevDetector {
 public:
  struct Params {
    double max_coeff_variation = 0.1;
    std::size_t min_intervals = 4;
  };

  StdDevDetector() : StdDevDetector(Params{}) {}
  explicit StdDevDetector(Params params) : params_(params) {}
  AutomationResult test(std::span<const util::TimePoint> timestamps) const;

 private:
  Params params_;
};

/// Baseline: autocorrelation of the binned connection-count time series;
/// automated when the maximum autocorrelation over candidate lags exceeds
/// a threshold (BotSniffer-style).
class AutocorrDetector {
 public:
  struct Params {
    double slot_seconds = 10.0;     ///< time series resolution
    double min_correlation = 0.5;
    std::size_t min_connections = 5;
  };

  AutocorrDetector() : AutocorrDetector(Params{}) {}
  explicit AutocorrDetector(Params params) : params_(params) {}
  AutomationResult test(std::span<const util::TimePoint> timestamps) const;

 private:
  Params params_;
};

/// Baseline: spectral peak of the binned series via radix-2 FFT
/// (BotFinder-style). A periodic spike train concentrates its power in the
/// harmonics of the beacon frequency, so the statistic is the ratio of the
/// strongest non-DC bin to the *mean* non-DC power (peak SNR); random
/// traffic has a flat spectrum and a small peak SNR.
class FftDetector {
 public:
  struct Params {
    double slot_seconds = 10.0;
    double min_peak_snr = 20.0;  ///< peak power / mean non-DC power
    std::size_t min_connections = 5;
    std::size_t fft_size = 4096;  ///< power of two
  };

  FftDetector() : FftDetector(Params{}) {}
  explicit FftDetector(Params params) : params_(params) {}
  AutomationResult test(std::span<const util::TimePoint> timestamps) const;

 private:
  Params params_;
};

/// In-place radix-2 complex FFT over interleaved (re, im) pairs.
/// `n` must be a power of two. Exposed for testing.
void fft_radix2(std::vector<double>& re, std::vector<double>& im);

}  // namespace eid::timing
