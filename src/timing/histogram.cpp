#include "timing/histogram.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace eid::timing {
namespace {

// Pair up bins from both histograms by hub (within tolerance) and return
// (freq_in_h, freq_in_k) rows over the union of bins.
std::vector<std::pair<double, double>> aligned_frequencies(const Histogram& h,
                                                           const Histogram& k,
                                                           double tol) {
  const double nh = static_cast<double>(h.total_count());
  const double nk = static_cast<double>(k.total_count());
  std::vector<std::pair<double, double>> rows;
  rows.reserve(h.bins.size() + k.bins.size());
  std::vector<bool> used_k(k.bins.size(), false);
  for (const Bin& hb : h.bins) {
    double kfreq = 0.0;
    for (std::size_t j = 0; j < k.bins.size(); ++j) {
      if (!used_k[j] && std::abs(k.bins[j].hub - hb.hub) <= tol) {
        kfreq = nk > 0 ? static_cast<double>(k.bins[j].count) / nk : 0.0;
        used_k[j] = true;
        break;
      }
    }
    rows.emplace_back(nh > 0 ? static_cast<double>(hb.count) / nh : 0.0, kfreq);
  }
  for (std::size_t j = 0; j < k.bins.size(); ++j) {
    if (!used_k[j]) {
      rows.emplace_back(0.0,
                        nk > 0 ? static_cast<double>(k.bins[j].count) / nk : 0.0);
    }
  }
  return rows;
}

double xlogx_over(double x, double m) {
  if (x <= 0.0 || m <= 0.0) return 0.0;
  return x * std::log(x / m);
}

}  // namespace

const Bin& Histogram::top_bin() const {
  return *std::max_element(bins.begin(), bins.end(), [](const Bin& a, const Bin& b) {
    if (a.count != b.count) return a.count < b.count;
    return a.hub > b.hub;  // prefer the smaller hub on ties
  });
}

Histogram periodic_reference(double period) {
  Histogram h;
  h.bins.push_back(Bin{period, 1});
  return h;
}

double jeffrey_divergence(const Histogram& h, const Histogram& k,
                          double hub_tolerance) {
  double d = 0.0;
  for (const auto& [hf, kf] : aligned_frequencies(h, k, hub_tolerance)) {
    const double m = (hf + kf) / 2.0;
    d += xlogx_over(hf, m) + xlogx_over(kf, m);
  }
  return d;
}

double l1_distance(const Histogram& h, const Histogram& k, double hub_tolerance) {
  double d = 0.0;
  for (const auto& [hf, kf] : aligned_frequencies(h, k, hub_tolerance)) {
    d += std::abs(hf - kf);
  }
  return d;
}

}  // namespace eid::timing
