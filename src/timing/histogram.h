// Histograms over inter-connection intervals and the Jeffrey divergence
// (§IV-C). Bins are identified by their cluster "hub" value; divergence is
// computed over the union of bins of the two histograms, treating absent
// bins as zero mass (with the 0*log(0) = 0 convention).
#pragma once

#include <cstddef>
#include <vector>

namespace eid::timing {

/// One histogram bin: the representative interval value ("hub", seconds)
/// and the number of observations assigned to it.
struct Bin {
  double hub = 0.0;
  std::size_t count = 0;
};

/// A frequency histogram over interval bins. Invariant: bins have count > 0.
struct Histogram {
  std::vector<Bin> bins;

  std::size_t total_count() const {
    std::size_t n = 0;
    for (const Bin& b : bins) n += b.count;
    return n;
  }

  /// The bin with the highest count (ties: smaller hub). Requires non-empty.
  const Bin& top_bin() const;
};

/// A reference histogram for a perfectly periodic process with the given
/// period: all mass in a single bin at `period`.
Histogram periodic_reference(double period);

/// Jeffrey divergence between two frequency histograms (Rubner et al.):
///   d_J(H, K) = sum_i [ h_i log(h_i / m_i) + k_i log(k_i / m_i) ],
/// with m_i = (h_i + k_i) / 2 over normalized frequencies, natural log.
/// Bins are matched by hub equality within `hub_tolerance` seconds.
/// Symmetric, non-negative, zero iff the normalized histograms coincide.
double jeffrey_divergence(const Histogram& h, const Histogram& k,
                          double hub_tolerance = 1e-9);

/// L1 (total variation style) distance between normalized histograms, used
/// in the paper as a sanity-check alternative metric.
double l1_distance(const Histogram& h, const Histogram& k,
                   double hub_tolerance = 1e-9);

}  // namespace eid::timing
