// Process-wide metrics registry for the detector fleet: counters, gauges
// and fixed-bucket histograms, exported as Prometheus text exposition and
// as a `metrics` JSON object (the BENCH_perf.json section shape).
//
// Design constraints, in order:
//
//   * Hot-path increments must be uncontended. Counter and histogram
//     cells are sharded: every thread — util::Executor workers and the
//     driving thread alike — owns a stable shard slot (assigned on first
//     touch, workers first), so concurrent increments from a fan-out
//     never bounce a cache line. A snapshot merges the shards.
//   * Disabled observability must cost (almost) nothing. Every mutation
//     checks one relaxed atomic bool and branches away; no clock reads,
//     no allocation, no locking on that path. bench_perf_pipeline's
//     BM_MetricsCounter* and the enabled-vs-disabled day-analysis pair
//     keep the overhead measured (<1% of day throughput).
//   * Observation must never perturb detection. Metrics are a pure side
//     channel — nothing in the registry feeds back into analysis, so
//     every DayReport stays bit-identical with metrics on or off
//     (asserted in determinism_test and rt_continuous_test).
//   * Snapshots are deterministic: metrics are reported sorted by name,
//     shard merge is a plain sum, bucket order is the registration order
//     of the bounds.
//
// Like the Prometheus client-library default registry, there is one
// process-wide instance (obs::metrics()); instrumented call sites cache
// their handles in function-local statics:
//
//   static obs::Counter& events = obs::metrics().counter("eid_events_total");
//   events.add(chunk.size());
//
// Handles stay valid for the life of the process (the registry never
// deletes a metric). Registering the same name twice returns the same
// handle; a histogram's bounds are fixed by its first registration.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace eid::obs {

/// Shard slots available to hot-path cells. Threads beyond this share
/// slots (correct, merely contended); a detector pool plus its driver is
/// far below the cap.
inline constexpr std::size_t kMetricShards = 16;

/// Stable shard slot of the calling thread in [0, kMetricShards).
std::size_t thread_shard();

namespace detail {

struct alignas(64) Cell {
  std::atomic<std::uint64_t> value{0};
};

/// Add to an atomic double with a CAS loop (std::atomic<double>::fetch_add
/// is C++20 but not yet universal across the toolchains we build on).
inline void atomic_add(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotone event count, sharded per thread slot.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    cells_[thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Merged value (sum over shards). Concurrent adds may or may not be
  /// included — the usual race-free-but-approximate live read.
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::array<detail::Cell, kMetricShards> cells_{};
};

/// Last-writer-wins instantaneous value (queue depth, buffered events,
/// partial-line bytes). Unsharded: sets race benignly and reads want the
/// latest value, not a sum.
class Gauge {
 public:
  void set(double value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
  }

  void add(double delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    detail::atomic_add(value_, delta);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, const std::atomic<bool>* enabled)
      : name_(std::move(name)), enabled_(enabled) {}

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges in ascending
/// order; a value v lands in the first bucket with v <= bound, or in the
/// implicit +Inf overflow bucket. Counts and the running sum are sharded
/// like Counter cells.
class Histogram {
 public:
  void observe(double value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    std::size_t bucket = bounds_.size();  // +Inf overflow
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (value <= bounds_[i]) {
        bucket = i;
        break;
      }
    }
    ShardData& shard = *shards_[thread_shard()];
    shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(shard.sum, value);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  const std::string& name() const { return name_; }

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      for (std::size_t b = 0; b <= bounds_.size(); ++b) {
        total += shard->buckets[b].load(std::memory_order_relaxed);
      }
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  /// One heap allocation per shard (no false sharing between shards).
  struct alignas(64) ShardData {
    explicit ShardData(std::size_t n_buckets) : buckets(n_buckets) {}
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<double> sum{0.0};
  };

  Histogram(std::string name, std::span<const double> bounds,
            const std::atomic<bool>* enabled);

  std::string name_;
  const std::atomic<bool>* enabled_;
  std::vector<double> bounds_;
  std::array<std::unique_ptr<ShardData>, kMetricShards> shards_;
};

// ---- Snapshot (deterministic merge) ----

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;          ///< upper edges, +Inf excluded
  std::vector<std::uint64_t> buckets;  ///< per-bucket counts, last = +Inf
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time merged view of every registered metric, sorted by name
/// within each kind — byte-identical output for identical cell contents.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Prometheus text exposition (TYPE comments, cumulative `_bucket{le=}`
/// rows, `_sum`/`_count`) — write to a file for the node-exporter textfile
/// collector or serve from a /metrics endpoint.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}
/// — the `metrics` section shape merged into BENCH_perf.json-style files.
std::string to_json(const MetricsSnapshot& snapshot);

class MetricsRegistry {
 public:
  /// Metrics collection on/off. Enabled by default; disabling turns every
  /// add/set/observe into a relaxed load + branch.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Find-or-register. Handles are stable for the process lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` must be ascending; ignored (first registration wins) when
  /// the name already exists.
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  MetricsSnapshot snapshot() const;

  /// Zero every cell (bench/test isolation). Not linearizable against
  /// concurrent writers — quiesce first.
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{true};
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide default registry (Prometheus-style).
MetricsRegistry& metrics();

// ---- Canonical bucket edges ----

/// Sub-second..minutes stage durations (finalize, save/load, tick cost).
std::span<const double> duration_buckets();

/// Microsecond-scale dispatch latencies (executor queue time).
std::span<const double> dispatch_buckets();

/// Second..day event->emission latencies (rt provisional incidents).
std::span<const double> latency_buckets();

}  // namespace eid::obs
