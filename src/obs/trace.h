// Scoped-span tracing emitted as Chrome trace-event JSON — load the
// written file in Perfetto (ui.perfetto.dev) or chrome://tracing to see
// every pipeline stage, executor dispatch, rt tick and state save/load
// laid out on a per-thread timeline.
//
// One process-wide sink pointer (obs::set_trace_sink) mirrors the metrics
// registry's default-instance design: instrumented call sites construct a
// TraceSpan unconditionally, and when no sink is installed the span is a
// single relaxed atomic load — no clock read, no allocation. Recording a
// span appends one complete ("ph":"X") event under the sink's mutex;
// spans are stage/chunk-grained (never per event), so the lock is cold.
//
// Tracing is a pure side channel like the metrics registry: enabling it
// never changes a DayReport (determinism_test / rt_continuous_test run
// the sweeps with a sink installed and byte-compare the reports).
//
// The sink caps its event buffer (default 1M spans ≈ a day of 5-minute
// ticks plus per-chunk stages at enterprise volume); once full, further
// spans are counted in dropped_events() instead of growing without bound
// in a long-lived --follow process.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

namespace eid::obs {

class TraceSink {
 public:
  explicit TraceSink(std::size_t max_events = 1'000'000)
      : max_events_(max_events) {}

  /// Append one complete ("X") event. ts/dur in microseconds on the
  /// process-steady timeline (trace_now_us()); tid is the caller's small
  /// thread id. Thread-safe.
  void record_complete(const char* name, const char* category,
                       std::uint64_t ts_us, std::uint64_t dur_us);

  std::size_t event_count() const;
  std::uint64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Chrome trace-event JSON (object form: {"traceEvents": [...], ...}).
  std::string to_chrome_json() const;

  /// Write to_chrome_json() atomically (tmp + rename), so a viewer or
  /// uploader never reads a torn file. Returns false on I/O failure.
  bool write_chrome_json(const std::filesystem::path& path) const;

  void clear();

 private:
  struct Event {
    const char* name;      ///< static string (instrumentation literals)
    const char* category;  ///< static string
    std::uint64_t ts_us;
    std::uint64_t dur_us;
    std::uint32_t tid;
  };

  std::size_t max_events_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Install (or clear, with nullptr) the process-wide sink. Swap only while
/// no spans are live — in-flight spans record to the sink they captured at
/// construction.
void set_trace_sink(TraceSink* sink);
TraceSink* trace_sink();

/// Microseconds since process start on the steady clock — the trace
/// timeline.
std::uint64_t trace_now_us();

/// Small dense id of the calling thread (Perfetto's track key).
std::uint32_t trace_thread_id();

/// RAII span: records [construction, destruction) as one complete event
/// when a sink was installed at construction. `name` and `category` must
/// be string literals (or otherwise outlive the sink).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "pipeline")
      : sink_(trace_sink()), name_(name), category_(category) {
    if (sink_ != nullptr) start_us_ = trace_now_us();
  }

  ~TraceSpan() {
    if (sink_ == nullptr) return;
    const std::uint64_t end_us = trace_now_us();
    sink_->record_complete(name_, category_, start_us_,
                           end_us > start_us_ ? end_us - start_us_ : 0);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSink* sink_;
  const char* name_;
  const char* category_;
  std::uint64_t start_us_ = 0;
};

}  // namespace eid::obs
