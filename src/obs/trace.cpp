#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

namespace eid::obs {

namespace {

std::atomic<TraceSink*> g_sink{nullptr};
std::atomic<std::uint32_t> g_next_thread_id{1};

}  // namespace

void set_trace_sink(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

TraceSink* trace_sink() { return g_sink.load(std::memory_order_acquire); }

std::uint64_t trace_now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            epoch)
          .count());
}

std::uint32_t trace_thread_id() {
  thread_local const std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void TraceSink::record_complete(const char* name, const char* category,
                                std::uint64_t ts_us, std::uint64_t dur_us) {
  const std::uint32_t tid = trace_thread_id();
  std::lock_guard lock(mutex_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(Event{name, category, ts_us, dur_us, tid});
}

std::size_t TraceSink::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::string TraceSink::to_chrome_json() const {
  // Names/categories are instrumentation literals ([a-z_ ] only), so no
  // string escaping is needed; keep the writer dependency-free.
  std::lock_guard lock(mutex_);
  std::string out = "{\"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& event = events_[i];
    out += i == 0 ? "\n" : ",\n";
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                  "\"ts\": %llu, \"dur\": %llu, \"pid\": 1, \"tid\": %u}",
                  event.name, event.category,
                  static_cast<unsigned long long>(event.ts_us),
                  static_cast<unsigned long long>(event.dur_us), event.tid);
    out += buf;
  }
  out += events_.empty() ? "]" : "\n]";
  out += ", \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped_events\": " +
         std::to_string(dropped_.load(std::memory_order_relaxed)) + "}}";
  return out;
}

bool TraceSink::write_chrome_json(const std::filesystem::path& path) const {
  const std::string body = to_chrome_json();
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return false;
    out << body << "\n";
    out.flush();
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

void TraceSink::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace eid::obs
