#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eid::obs {

namespace {

/// Slots are handed out in first-touch order; a pool's workers touch their
/// first metric before the driver saturates the slots, so each gets its
/// own cell in steady state. Wrap-around beyond kMetricShards threads is
/// contention, not corruption.
std::atomic<std::size_t> g_next_shard{0};

/// Shortest round-trippable formatting: integers print without a
/// fraction; everything else at the least %g precision that parses back
/// bit-exact (so bucket edges read "0.0001", not 17 digits of noise,
/// while sums keep full precision). JSON-safe: non-finite guards to 0.
std::string format_double(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

}  // namespace

std::size_t thread_shard() {
  thread_local const std::size_t slot =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

Histogram::Histogram(std::string name, std::span<const double> bounds,
                     const std::atomic<bool>* enabled)
    : name_(std::move(name)),
      enabled_(enabled),
      bounds_(bounds.begin(), bounds.end()) {
  for (auto& shard : shards_) {
    shard = std::make_unique<ShardData>(bounds_.size() + 1);
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  for (const auto& existing : counters_) {
    if (existing->name() == name) return *existing;
  }
  counters_.push_back(
      std::unique_ptr<Counter>(new Counter(std::string(name), &enabled_)));
  return *counters_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  for (const auto& existing : gauges_) {
    if (existing->name() == name) return *existing;
  }
  gauges_.push_back(
      std::unique_ptr<Gauge>(new Gauge(std::string(name), &enabled_)));
  return *gauges_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  std::lock_guard lock(mutex_);
  for (const auto& existing : histograms_) {
    if (existing->name() == name) return *existing;
  }
  histograms_.push_back(std::unique_ptr<Histogram>(
      new Histogram(std::string(name), bounds, &enabled_)));
  return *histograms_.back();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard lock(mutex_);
    snap.counters.reserve(counters_.size());
    for (const auto& counter : counters_) {
      snap.counters.push_back({counter->name(), counter->value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& gauge : gauges_) {
      snap.gauges.push_back({gauge->name(), gauge->value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& histogram : histograms_) {
      HistogramSnapshot h;
      h.name = histogram->name();
      h.bounds = histogram->bounds();
      h.buckets.assign(h.bounds.size() + 1, 0);
      for (const auto& shard : histogram->shards_) {
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
          h.buckets[b] += shard->buckets[b].load(std::memory_order_relaxed);
        }
        h.sum += shard->sum.load(std::memory_order_relaxed);
      }
      for (const std::uint64_t c : h.buckets) h.count += c;
      snap.histograms.push_back(std::move(h));
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mutex_);
  for (const auto& counter : counters_) {
    for (auto& cell : counter->cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& gauge : gauges_) {
    gauge->value_.store(0.0, std::memory_order_relaxed);
  }
  for (const auto& histogram : histograms_) {
    for (const auto& shard : histogram->shards_) {
      for (auto& bucket : shard->buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      shard->sum.store(0.0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& counter : snapshot.counters) {
    out += "# TYPE " + counter.name + " counter\n";
    out += counter.name + " " + std::to_string(counter.value) + "\n";
  }
  for (const auto& gauge : snapshot.gauges) {
    out += "# TYPE " + gauge.name + " gauge\n";
    out += gauge.name + " " + format_double(gauge.value) + "\n";
  }
  for (const auto& histogram : snapshot.histograms) {
    out += "# TYPE " + histogram.name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < histogram.bounds.size(); ++b) {
      cumulative += histogram.buckets[b];
      out += histogram.name + "_bucket{le=\"" +
             format_double(histogram.bounds[b]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += histogram.name + "_bucket{le=\"+Inf\"} " +
           std::to_string(histogram.count) + "\n";
    out += histogram.name + "_sum " + format_double(histogram.sum) + "\n";
    out += histogram.name + "_count " + std::to_string(histogram.count) + "\n";
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  // Metric names are [a-zA-Z0-9_:] by construction, so keys need no
  // escaping; keep the writer dependency-free like bench_common.h.
  std::string out = "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& counter = snapshot.counters[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + counter.name + "\": " + std::to_string(counter.value);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& gauge = snapshot.gauges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + gauge.name + "\": " + format_double(gauge.value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& histogram = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + histogram.name + "\": {\"count\": " +
           std::to_string(histogram.count) +
           ", \"sum\": " + format_double(histogram.sum) + ", \"buckets\": [";
    for (std::size_t b = 0; b < histogram.buckets.size(); ++b) {
      const std::string le = b < histogram.bounds.size()
                                 ? format_double(histogram.bounds[b])
                                 : "\"+Inf\"";
      out += b == 0 ? "" : ", ";
      out += "{\"le\": " + le +
             ", \"count\": " + std::to_string(histogram.buckets[b]) + "}";
    }
    out += "]}";
  }
  out += snapshot.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

std::span<const double> duration_buckets() {
  static const double edges[] = {0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05,
                                 0.1,    0.5,    1.0,   5.0,   30.0};
  return edges;
}

std::span<const double> dispatch_buckets() {
  static const double edges[] = {0.000001, 0.00001, 0.0001, 0.001,
                                 0.01,     0.1,     1.0};
  return edges;
}

std::span<const double> latency_buckets() {
  static const double edges[] = {1.0,    10.0,    60.0,    300.0,  900.0,
                                 3600.0, 14400.0, 43200.0, 86400.0};
  return edges;
}

}  // namespace eid::obs
