// Crash-safe delta checkpoints: an append-only chain of delta frames next
// to a full EIDSTOR1 checkpoint, so daily saves cost O(day's growth), not
// O(month-scale history).
//
//   <state>        full checkpoint (storage/state.h), rewritten on
//                  compaction (every CheckpointPolicy::full_every saves)
//   <state>.delta  frame chain, truncated on every compaction
//
//   frame   := magic(8 = "EIDDELT1") payload_size(u32le) payload
//              crc32(u32le, over payload)
//   payload := a standard EIDSTOR1 container (storage/container.h)
//
// Each frame is a complete container with its own frame-local string
// table, a DeltaHeader section binding it to one specific base checkpoint
// (the CRC-32 of the base file's bytes) and one position in the chain
// (seq: 1, 2, ...), plus the day's changes: domains first seen, UA entries
// touched (absolute replacements), the always-small absolute sections
// (config, models, training stats, counters), training rows appended since
// the previous frame, and — when present — the rt tail cursor and the
// incident-store snapshot a hot standby needs to take over.
//
// Recovery contract: a torn tail (crash mid-append) is detected by the
// frame CRC and truncated by the next append; a frame whose base CRC or
// seq does not match — or whose payload fails section CRCs or decoding —
// degrades the load to everything before it (worst case: the last full
// checkpoint), never to an error. See src/storage/FORMAT.md.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/incidents.h"
#include "storage/state.h"

namespace eid::storage {

inline constexpr std::string_view kDeltaMagic = "EIDDELT1";

/// Chain file next to a full checkpoint: "<path>.delta".
std::filesystem::path delta_chain_path(const std::filesystem::path& path);

/// One UA entry for encoding, borrowed from a live UaHistory.
struct DeltaUaEntryView {
  std::string_view ua;
  bool popular = false;
  std::vector<std::string_view> hosts;  ///< empty when popular
};

/// Borrowed inputs for one frame (the daily save path never copies the
/// month-scale histories). Pointers may be null only where noted.
struct DeltaInputs {
  std::uint32_t base_crc = 0;  ///< CRC-32 of the base checkpoint file bytes
  std::uint64_t seq = 0;       ///< 1 for the first frame after a full save
  std::int64_t day = 0;        ///< day the frame was written for
  std::uint64_t days_ingested = 0;  ///< absolute DomainHistory day counter
  const std::vector<std::string>* new_domains = nullptr;  ///< required
  std::vector<DeltaUaEntryView> ua_entries;
  const core::PipelineConfig* config = nullptr;   ///< required
  const core::ScoredModel* cc_model = nullptr;    ///< required
  const core::ScoredModel* sim_model = nullptr;   ///< required
  TrainingStats training{};
  Counters counters{};
  const TrainingRows* training_rows = nullptr;  ///< rows since previous frame
  const std::vector<std::string>* intel_domains = nullptr;  ///< when changed
  const profile::TopSitesList* top_sites = nullptr;         ///< when changed
  bool has_cursor = false;
  std::int64_t cursor_day = 0;       ///< day the tail cursor points into
  std::uint64_t cursor_offset = 0;   ///< byte offset into that day's log
  const core::IncidentStore* incidents = nullptr;  ///< when tracking incidents
};

/// One decoded frame (owning).
struct DeltaFrame {
  std::uint32_t base_crc = 0;
  std::uint64_t seq = 0;
  std::int64_t day = 0;
  std::uint64_t days_ingested = 0;
  std::vector<std::string> new_domains;
  struct UaEntry {
    std::string ua;
    bool popular = false;
    std::vector<std::string> hosts;
  };
  std::vector<UaEntry> ua_entries;
  core::PipelineConfig config{};
  core::ScoredModel cc_model{};
  core::ScoredModel sim_model{};
  TrainingStats training{};
  Counters counters{};
  TrainingRows training_rows{};  ///< rows to append, may be empty
  bool has_intel = false;
  std::vector<std::string> intel_domains;
  bool has_top_sites = false;
  std::vector<std::string> top_sites;
  bool has_cursor = false;
  std::int64_t cursor_day = 0;
  std::uint64_t cursor_offset = 0;
  bool has_incidents = false;
  int incidents_next_id = 0;
  std::vector<core::Incident> incidents;
};

/// Encode one frame payload (an EIDSTOR1 container; the caller wraps it
/// in the frame header via append_delta_frame).
std::string encode_delta_frame(const DeltaInputs& inputs);

/// Decode a frame payload. nullopt + status on any failure.
std::optional<DeltaFrame> decode_delta_frame(std::string_view payload,
                                             LoadStatus* status = nullptr);

/// Append one encoded frame to the chain, truncating any torn tail a
/// previous crash left first, then fsyncing. On failure the chain holds at
/// worst a torn tail that the next append (or load) handles.
bool append_delta_frame(const std::filesystem::path& chain_path,
                        std::string_view payload,
                        LoadStatus* status = nullptr);

/// Frame-level scan of a chain file (CRC-checked, not decoded).
struct DeltaChainInfo {
  struct Frame {
    std::uint64_t offset = 0;  ///< frame start (magic) in the file
    std::string payload;       ///< CRC-verified container bytes
  };
  std::vector<Frame> frames;       ///< complete, CRC-clean frames in order
  std::uint64_t valid_bytes = 0;   ///< chain prefix covered by `frames`
  std::uint64_t file_bytes = 0;    ///< whole file size
  bool torn_tail = false;          ///< bytes past valid_bytes exist
  std::string tail_detail;         ///< why the scan stopped
};

/// Scan a chain file. A missing file yields an empty (ok) info; any other
/// read failure returns false with `status`.
bool read_delta_chain(const std::filesystem::path& chain_path,
                      DeltaChainInfo& info, LoadStatus* status = nullptr);

/// Apply one decoded frame on top of a detector state. False + status when
/// the frame's contents do not fit the state (e.g. training-row column
/// mismatch) — the state may be partially updated and should be discarded.
bool apply_delta_frame(DetectorState& state, const DeltaFrame& frame,
                       LoadStatus* status = nullptr);

/// What a chain-aware load did, for logging and for resuming the chain.
struct ChainLoadReport {
  std::uint32_t base_crc = 0;        ///< CRC-32 of the base file bytes
  std::uint64_t last_seq = 0;        ///< seq of the last applied frame
  std::size_t frames_applied = 0;
  std::size_t frames_dropped = 0;    ///< CRC-clean frames not applied
  bool degraded = false;             ///< stopped early on a bad frame
  bool torn_tail = false;            ///< chain ended in a torn append
  std::uint64_t applied_bytes = 0;   ///< chain prefix the applied frames span
  std::string detail;                ///< why frames were dropped, if any
  // Latest failover payload seen across applied frames:
  bool has_cursor = false;
  std::int64_t cursor_day = 0;
  std::uint64_t cursor_offset = 0;
  bool has_incidents = false;
  int incidents_next_id = 0;
  std::vector<core::Incident> incidents;
};

/// Load a full checkpoint plus its delta chain: decode the base file, then
/// apply every frame whose base CRC, seq and contents check out, stopping
/// (degraded, not failed) at the first frame that does not. nullopt only
/// when the base itself cannot be loaded.
std::optional<DetectorState> load_detector_state_chain(
    const std::filesystem::path& path, ChainLoadReport* report = nullptr,
    LoadStatus* status = nullptr);

}  // namespace eid::storage
