#include "storage/container.h"

#include <cstdio>
#include <fstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/binary.h"
#include "util/crc32.h"
#include "util/fault_injection.h"

namespace eid::storage {

/// Flush a path's data (and, for directories, the rename record) to
/// stable storage. Without this, "atomic" tmp+rename only protects
/// against process crashes — a power loss after the rename is journaled
/// but before the data blocks land can leave the path pointing at a
/// torn file, losing the previous good checkpoint.
void sync_path_durable(const std::filesystem::path& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

void ContainerWriter::add_section(SectionId id, std::string payload) {
  sections_.emplace_back(static_cast<std::uint64_t>(id), std::move(payload));
}

std::string ContainerWriter::encode() const {
  util::ByteWriter out;
  // Header + per section: id/size varints (<= 10 each), payload, CRC.
  std::size_t bound = kContainerMagic.size() + 20;
  for (const auto& [id, payload] : sections_) bound += payload.size() + 24;
  out.reserve(bound);
  out.bytes(kContainerMagic);
  out.varint(kFormatVersion);
  out.varint(sections_.size());
  for (const auto& [id, payload] : sections_) {
    out.varint(id);
    out.varint(payload.size());
    out.bytes(payload);
    out.u32le(util::crc32(payload));
  }
  return out.take();
}

std::optional<ContainerReader> ContainerReader::parse(std::string_view bytes,
                                                      LoadStatus* status) {
  if (bytes.size() < kContainerMagic.size() ||
      bytes.substr(0, kContainerMagic.size()) != kContainerMagic) {
    set_status(status, LoadError::BadMagic, "not an EIDSTOR1 container");
    return std::nullopt;
  }
  util::ByteReader in(bytes.substr(kContainerMagic.size()));
  std::uint64_t version = 0;
  if (!in.varint(version)) {
    set_status(status, LoadError::Truncated, "file ends inside the header");
    return std::nullopt;
  }
  if (version != kFormatVersion) {
    set_status(status, LoadError::UnsupportedVersion,
               "container format version " + std::to_string(version) +
                   " (this build reads version " +
                   std::to_string(kFormatVersion) + ")");
    return std::nullopt;
  }
  std::uint64_t n_sections = 0;
  if (!in.varint(n_sections)) {
    set_status(status, LoadError::Truncated, "file ends inside the header");
    return std::nullopt;
  }
  ContainerReader reader;
  for (std::uint64_t s = 0; s < n_sections; ++s) {
    const std::string at = "section " + std::to_string(s);
    Section section;
    std::uint64_t size = 0;
    if (!in.varint(section.id) || !in.varint(size)) {
      set_status(status, LoadError::Truncated, at + ": header cut short");
      return std::nullopt;
    }
    if (size > in.remaining() || !in.bytes(static_cast<std::size_t>(size),
                                           section.payload)) {
      set_status(status, LoadError::Truncated, at + ": payload cut short");
      return std::nullopt;
    }
    std::uint32_t stored_crc = 0;
    if (!in.u32le(stored_crc)) {
      set_status(status, LoadError::Truncated, at + ": checksum cut short");
      return std::nullopt;
    }
    if (util::crc32(section.payload) != stored_crc) {
      set_status(status, LoadError::ChecksumMismatch,
                 at + " (id " + std::to_string(section.id) +
                     "): checksum mismatch");
      return std::nullopt;
    }
    reader.sections_.push_back(section);
  }
  if (!in.at_end()) {
    set_status(status, LoadError::Malformed,
               std::to_string(in.remaining()) +
                   " trailing byte(s) after the last section");
    return std::nullopt;
  }
  return reader;
}

const Section* ContainerReader::find(SectionId id) const {
  for (const Section& section : sections_) {
    if (section.id == static_cast<std::uint64_t>(id)) return &section;
  }
  return nullptr;
}

bool looks_like_container(std::string_view bytes) {
  return bytes.size() >= kContainerMagic.size() &&
         bytes.substr(0, kContainerMagic.size()) == kContainerMagic;
}

std::optional<std::string> read_file(const std::filesystem::path& path,
                                     LoadStatus* status) {
  util::FaultInjector& faults = util::FaultInjector::instance();
  if (faults.any_armed() &&
      faults.fail_open(util::FaultPoint::StorageOpenRead)) {
    set_status(status, LoadError::IoError,
               "injected open failure on " + path.string());
    return std::nullopt;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // A present-but-unreadable file (permissions, I/O error) must not be
    // mistaken for "no checkpoint yet" — callers treat FileNotFound as a
    // benign first run.
    std::error_code ec;
    const bool exists = std::filesystem::exists(path, ec);
    set_status(status, exists && !ec ? LoadError::IoError : LoadError::FileNotFound,
               "cannot open " + path.string());
    return std::nullopt;
  }
  std::string bytes;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size > 0) {
    bytes.resize(static_cast<std::size_t>(size));
    in.seekg(0);
    in.read(bytes.data(), size);
  }
  if (in.bad()) {
    set_status(status, LoadError::IoError, "read failed on " + path.string());
    return std::nullopt;
  }
  if (faults.any_armed()) {
    bool fail = false;
    faults.filter_read(util::FaultPoint::StorageRead, bytes, fail);
    if (fail) {
      set_status(status, LoadError::IoError,
                 "injected read failure on " + path.string());
      return std::nullopt;
    }
  }
  return bytes;
}

bool write_file_atomic(const std::filesystem::path& path,
                       std::string_view bytes, LoadStatus* status) {
  util::FaultInjector& faults = util::FaultInjector::instance();
  const std::filesystem::path tmp = path.string() + ".tmp";
  if (faults.any_armed() &&
      faults.fail_open(util::FaultPoint::StorageOpenWrite)) {
    set_status(status, LoadError::IoError,
               "injected open failure on " + tmp.string());
    return false;
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      set_status(status, LoadError::IoError, "cannot open " + tmp.string());
      return false;
    }
    std::size_t allowed = bytes.size();
    bool injected_fail = false;
    if (faults.any_armed()) {
      allowed = faults.filter_write(util::FaultPoint::StorageWrite,
                                    bytes.size(), injected_fail);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(allowed));
    out.flush();  // surface disk-full before promoting the tmp file
    if (injected_fail) {
      // A simulated crash mid-write: the torn tmp file stays on disk
      // (that is what a real crash leaves) and the final path is never
      // touched — the previous good checkpoint survives.
      set_status(status, LoadError::IoError,
                 "injected torn write on " + tmp.string());
      return false;
    }
    if (!out) {
      set_status(status, LoadError::IoError, "write failed on " + tmp.string());
      std::remove(tmp.string().c_str());
      return false;
    }
  }
  sync_path_durable(tmp);
  if (faults.any_armed() &&
      faults.skip_rename(util::FaultPoint::StorageRename)) {
    // Simulated crash in the window between the tmp write and the rename:
    // a fully written tmp file exists but the final path still holds the
    // previous checkpoint.
    set_status(status, LoadError::IoError,
               "injected crash before rename of " + tmp.string());
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    set_status(status, LoadError::IoError,
               "rename to " + path.string() + " failed: " + ec.message());
    std::remove(tmp.string().c_str());
    return false;
  }
  const std::filesystem::path dir = path.parent_path();
  sync_path_durable(dir.empty() ? std::filesystem::path(".") : dir);
  return true;
}

}  // namespace eid::storage
