// The versioned, sectioned binary container underlying every eid state
// file. One format carries everything from a single domain history to a
// full detector checkpoint:
//
//   file    := magic(8 = "EIDSTOR1") version(varint) n_sections(varint)
//              section*
//   section := id(varint) payload_size(varint) payload crc32(u32le)
//
// Sections are independent length-prefixed blobs, each closed by a CRC-32
// of its payload, so corruption is localized and detected before any
// decoding; unknown section ids are skipped (forward compatibility).
// Writes go through a tmp-file + rename so a crash mid-save never replaces
// a good checkpoint with a torn one. See src/storage/FORMAT.md for the
// full on-disk specification.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/status.h"

namespace eid::storage {

inline constexpr std::string_view kContainerMagic = "EIDSTOR1";
inline constexpr std::uint64_t kFormatVersion = 1;

/// Section ids used by the detector-state encoder (storage/state.h). The
/// container layer itself treats ids as opaque.
enum class SectionId : std::uint64_t {
  StringTable = 1,    ///< shared interned string table (all other sections
                      ///< reference strings by index into it)
  Config = 2,         ///< core::PipelineConfig
  DomainHistory = 3,  ///< profile::DomainHistory
  UaHistory = 4,      ///< profile::UaHistory
  TopSites = 5,       ///< profile::TopSitesList
  CcModel = 6,        ///< core::ScoredModel (C&C)
  SimModel = 7,       ///< core::ScoredModel (similarity)
  TrainingStats = 8,  ///< WHOIS training aggregates + model readiness
  Intel = 9,          ///< external intelligence (IOC) domain list
  Counters = 10,      ///< days-operated and other lifetime counters
  TrainingRows = 11,  ///< unfinalized regression rows (mid-training resume)
  RtCursor = 12,      ///< rt tail cursor (day + byte offset) for failover
  Incidents = 13,     ///< cross-day incident-store snapshot
  // 20+ appear only inside EIDDELT1 delta frames (storage/delta.h).
  DeltaHeader = 20,   ///< base checkpoint id + frame sequence number + day
  DomainDelta = 21,   ///< domains first seen since the previous frame
  UaDelta = 22,       ///< UA entries touched since the previous frame
};

/// Accumulates sections, then renders the full container byte stream.
class ContainerWriter {
 public:
  void add_section(SectionId id, std::string payload);

  /// Full container: magic + version + section count + sections.
  std::string encode() const;

 private:
  std::vector<std::pair<std::uint64_t, std::string>> sections_;
};

/// A parsed section; `payload` views into the buffer handed to parse().
struct Section {
  std::uint64_t id = 0;
  std::string_view payload;
};

/// Parses a container and verifies every section CRC up front. The reader
/// only holds views — the byte buffer must outlive it.
class ContainerReader {
 public:
  /// nullopt on any structural failure; `status` carries the reason.
  static std::optional<ContainerReader> parse(std::string_view bytes,
                                              LoadStatus* status = nullptr);

  /// First section with the id, nullptr when absent.
  const Section* find(SectionId id) const;

  const std::vector<Section>& sections() const { return sections_; }

 private:
  std::vector<Section> sections_;
};

/// True when the bytes begin with the binary container magic — the
/// format auto-detection hook for entry points that also accept the
/// legacy text formats.
bool looks_like_container(std::string_view bytes);

/// Read a whole file (binary mode). nullopt + status on failure.
std::optional<std::string> read_file(const std::filesystem::path& path,
                                     LoadStatus* status = nullptr);

/// Write bytes atomically: write to "<path>.tmp", flush, then rename over
/// `path`, so readers (and crashes) see either the old or the new file,
/// never a prefix.
bool write_file_atomic(const std::filesystem::path& path,
                       std::string_view bytes, LoadStatus* status = nullptr);

/// fsync a file (or directory — the rename/creation record) to stable
/// storage. Shared by the atomic-write and delta-chain append paths.
void sync_path_durable(const std::filesystem::path& path);

}  // namespace eid::storage
