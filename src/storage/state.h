// Detector checkpoint/restore: the full state an eid deployment accumulates
// over months — domain/UA histories, the top-sites whitelist, both trained
// scoring models, WHOIS training aggregates, external intel and lifetime
// counters — bundled into one binary container (storage/container.h) so a
// restarted process resumes exactly where the previous one stopped: a
// detector saved after day N and restored elsewhere produces bit-identical
// DayReports for day N+1 (tests/storage_checkpoint_test.cpp).
//
// All sections share one interned string table (sorted, front-coded,
// encoded shard-parallel via util::parallel_ranges), so a host name that
// appears in a thousand UA entries is written once and referenced by a
// 1-3 byte varint id — the compact on-disk interned format for month-scale
// histories the ROADMAP calls for.
//
// Per-component save/load free functions write the same container with a
// subset of sections, so a deployment can checkpoint just a history. The
// legacy line-oriented text formats remain loadable through the
// profile/persistence.h entry points, which auto-detect the container
// magic and dispatch here.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "storage/container.h"

namespace eid::storage {

/// WHOIS aggregates accumulated during training. They seed the per-day
/// WhoisDefaults of every operation analysis, so a checkpoint without them
/// would not reproduce the uninterrupted run bit for bit.
struct TrainingStats {
  double whois_age_sum = 0.0;
  double whois_validity_sum = 0.0;
  std::uint64_t whois_samples = 0;
  bool models_ready = false;  ///< finalize_training()/set_models() happened
};

/// Lifetime counters beyond DomainHistory::days_ingested (which travels
/// inside the domain-history section).
struct Counters {
  std::uint64_t days_operated = 0;  ///< completed operation days (run_day)
};

/// Unfinalized regression rows accumulated during training, flattened
/// row-major. Carried in checkpoints taken before finalize_training() so
/// a crash mid-training resumes with the exact rows an uninterrupted run
/// would hand to the solver. Once the models are finalized the rows are
/// dropped (an operating detector never re-trains from them).
struct TrainingRows {
  std::uint64_t cc_cols = 0;       ///< features::kCcFeatureCount when rows exist
  std::uint64_t sim_cols = 0;      ///< features::kSimFeatureCount when rows exist
  std::vector<double> cc;          ///< cc_cols doubles per labeled C&C row
  std::vector<double> cc_labels;   ///< one label per C&C row
  std::vector<double> sim;         ///< sim_cols doubles per similarity row
  std::vector<double> sim_labels;  ///< one label per similarity row

  bool empty() const { return cc_labels.empty() && sim_labels.empty(); }
};

/// Everything needed to resume an api::Detector in a fresh process.
struct DetectorState {
  core::PipelineConfig config{};
  profile::DomainHistory domain_history;
  profile::UaHistory ua_history;
  bool has_top_sites = false;  ///< a whitelist was installed when saved
  profile::TopSitesList top_sites;
  core::ScoredModel cc_model;
  core::ScoredModel sim_model;
  TrainingStats training{};
  std::vector<std::string> intel_domains;  ///< external IOC feed snapshot
  Counters counters{};
  TrainingRows training_rows{};  ///< non-empty only before models_ready
};

/// Borrowed view of a detector's state for encoding without copying the
/// month-scale histories (the daily save path). Decode always produces
/// the owning DetectorState. `top_sites` nullptr means "no whitelist
/// installed"; `intel_domains` nullptr means empty.
struct DetectorStateView {
  const core::PipelineConfig* config = nullptr;
  const profile::DomainHistory* domain_history = nullptr;
  const profile::UaHistory* ua_history = nullptr;
  const profile::TopSitesList* top_sites = nullptr;
  const core::ScoredModel* cc_model = nullptr;
  const core::ScoredModel* sim_model = nullptr;
  TrainingStats training{};
  const std::vector<std::string>* intel_domains = nullptr;
  Counters counters{};
  const TrainingRows* training_rows = nullptr;  ///< nullptr/empty == none
};

/// Borrow an owning state (helper for the forwarding overloads).
DetectorStateView view_of(const DetectorState& state);

// ---- Full detector state ----

/// Encode to container bytes. `n_threads` parallelizes the string-table
/// encode (fixed block partition: the bytes are identical for any value);
/// `executor` (optional) carries that fan-out on a persistent pool.
std::string encode_detector_state(const DetectorStateView& state,
                                  std::size_t n_threads = 1,
                                  util::Executor* executor = nullptr);
inline std::string encode_detector_state(const DetectorState& state,
                                         std::size_t n_threads = 1,
                                         util::Executor* executor = nullptr) {
  return encode_detector_state(view_of(state), n_threads, executor);
}

std::optional<DetectorState> decode_detector_state(std::string_view bytes,
                                                   LoadStatus* status = nullptr);

/// Atomic tmp-file + rename write of the encoded state.
bool save_detector_state(const DetectorStateView& state,
                         const std::filesystem::path& path,
                         std::size_t n_threads = 1,
                         LoadStatus* status = nullptr,
                         util::Executor* executor = nullptr);
inline bool save_detector_state(const DetectorState& state,
                                const std::filesystem::path& path,
                                std::size_t n_threads = 1,
                                LoadStatus* status = nullptr,
                                util::Executor* executor = nullptr) {
  return save_detector_state(view_of(state), path, n_threads, status,
                             executor);
}

std::optional<DetectorState> load_detector_state(
    const std::filesystem::path& path, LoadStatus* status = nullptr);

// ---- Per-component binary files (string table + one section) ----

bool save_domain_history(const profile::DomainHistory& history,
                         const std::filesystem::path& path,
                         std::size_t n_threads = 1,
                         LoadStatus* status = nullptr);
std::optional<profile::DomainHistory> decode_domain_history(
    std::string_view bytes, LoadStatus* status = nullptr);
std::optional<profile::DomainHistory> load_domain_history(
    const std::filesystem::path& path, LoadStatus* status = nullptr);

bool save_ua_history(const profile::UaHistory& history,
                     const std::filesystem::path& path,
                     std::size_t n_threads = 1, LoadStatus* status = nullptr);
std::optional<profile::UaHistory> decode_ua_history(std::string_view bytes,
                                                    LoadStatus* status = nullptr);
std::optional<profile::UaHistory> load_ua_history(
    const std::filesystem::path& path, LoadStatus* status = nullptr);

bool save_top_sites(const profile::TopSitesList& sites,
                    const std::filesystem::path& path,
                    std::size_t n_threads = 1, LoadStatus* status = nullptr);
std::optional<profile::TopSitesList> load_top_sites(
    const std::filesystem::path& path, LoadStatus* status = nullptr);

bool save_scored_model(const core::ScoredModel& model,
                       const std::filesystem::path& path,
                       LoadStatus* status = nullptr);
std::optional<core::ScoredModel> load_scored_model(
    const std::filesystem::path& path, LoadStatus* status = nullptr);

}  // namespace eid::storage
