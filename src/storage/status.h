// Load-failure reporting for every persistence path (binary containers and
// the legacy text formats alike). Loaders return std::optional for the
// value and, through an optional out-param, a machine-checkable reason plus
// a human-oriented detail string — a SOC deployment restoring month-scale
// state at 6am needs "ua history: section checksum mismatch", not a bare
// nullopt.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace eid::storage {

enum class LoadError : std::uint8_t {
  None = 0,            ///< load succeeded
  FileNotFound,        ///< path missing or unreadable
  IoError,             ///< read/write syscall failure
  BadMagic,            ///< neither a known binary nor text format
  UnsupportedVersion,  ///< container from a newer format revision
  Truncated,           ///< file ends mid-structure
  ChecksumMismatch,    ///< section CRC32 does not match its payload
  Malformed,           ///< structurally decodable but semantically invalid
  MissingSection,      ///< required section absent from the container
};

constexpr const char* load_error_name(LoadError error) {
  switch (error) {
    case LoadError::None: return "none";
    case LoadError::FileNotFound: return "file-not-found";
    case LoadError::IoError: return "io-error";
    case LoadError::BadMagic: return "bad-magic";
    case LoadError::UnsupportedVersion: return "unsupported-version";
    case LoadError::Truncated: return "truncated";
    case LoadError::ChecksumMismatch: return "checksum-mismatch";
    case LoadError::Malformed: return "malformed";
    case LoadError::MissingSection: return "missing-section";
  }
  return "unknown";
}

struct LoadStatus {
  LoadError error = LoadError::None;
  std::string detail;  ///< human-oriented context ("line 41: ...", ...)

  bool ok() const { return error == LoadError::None; }
};

/// Record a failure into an optional status out-param (nullptr tolerated).
inline void set_status(LoadStatus* status, LoadError error,
                       std::string detail = {}) {
  if (status == nullptr) return;
  status->error = error;
  status->detail = std::move(detail);
}

}  // namespace eid::storage
