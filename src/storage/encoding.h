// Internal encoding primitives shared by the full-checkpoint encoder
// (storage/state.cpp) and the delta-chain encoder (storage/delta.cpp):
// the front-coded string table, delta-coded id runs, and the per-section
// codecs both container kinds assemble from. NOT part of the public
// storage API — include storage/state.h or storage/delta.h instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/container.h"
#include "storage/state.h"

namespace eid::util {
class ByteReader;
class ByteWriter;
class Executor;
}

namespace eid::storage::detail {

using StringTable = std::vector<std::string_view>;

StringTable sorted_unique(StringTable strings);

/// Hashed lookup over the sorted table. Ids keep the table's sort order,
/// so id order == lexicographic order and encoded bytes are stable.
class TableIndex {
 public:
  explicit TableIndex(const StringTable& table) {
    ids_.reserve(table.size());
    for (std::size_t i = 0; i < table.size(); ++i) {
      ids_.emplace(table[i], static_cast<std::uint64_t>(i));
    }
  }

  /// Id of `text` in the table. Caller guarantees membership.
  std::uint64_t id(std::string_view text) const {
    return ids_.find(text)->second;
  }

 private:
  std::unordered_map<std::string_view, std::uint64_t> ids_;
};

/// Decoded string table: all strings expanded into one arena, referenced
/// by (offset, length) spans.
struct DecodedTable {
  std::string arena;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;

  std::size_t size() const { return spans.size(); }
  std::string_view view(std::uint64_t i) const {
    const auto [offset, length] = spans[static_cast<std::size_t>(i)];
    return std::string_view(arena).substr(offset, length);
  }
};

std::string encode_string_table(const StringTable& table,
                                std::size_t n_threads,
                                util::Executor* executor = nullptr);
bool decode_string_table(std::string_view payload, DecodedTable& table,
                         LoadStatus* status);

void encode_id_run(util::ByteWriter& out, const std::vector<std::uint64_t>& ids);
bool decode_id_run(util::ByteReader& in, std::uint64_t count,
                   std::uint64_t table_size, std::vector<std::uint64_t>& out);
std::vector<std::uint64_t> sorted_ids(const TableIndex& index,
                                      const std::vector<std::string_view>& strings);

// ---- Section codecs ----

std::vector<std::string_view> domain_views(const profile::DomainHistory& history);
std::string encode_domain_history_section(const profile::DomainHistory& history,
                                          const TableIndex& index);
bool decode_domain_history_section(std::string_view payload,
                                   const DecodedTable& table,
                                   profile::DomainHistory& history,
                                   LoadStatus* status);

std::vector<std::string_view> ua_views(const profile::UaHistory& history);
std::string encode_ua_history_section(const profile::UaHistory& history,
                                      const TableIndex& index);
bool decode_ua_history_section(std::string_view payload,
                               const DecodedTable& table,
                               std::optional<profile::UaHistory>& history,
                               LoadStatus* status);

std::string encode_string_set_section(const std::vector<std::string_view>& strings,
                                      const TableIndex& index);
bool decode_string_set_section(std::string_view payload,
                               const DecodedTable& table, const char* what,
                               std::vector<std::string>& out,
                               LoadStatus* status);
std::vector<std::string_view> top_site_views(const profile::TopSitesList& sites);

std::string encode_config_section(const core::PipelineConfig& config);
bool decode_config_section(std::string_view payload,
                           core::PipelineConfig& config, LoadStatus* status);

std::string encode_model_section(const core::ScoredModel& model);
bool decode_model_section(std::string_view payload, const char* what,
                          core::ScoredModel& model, LoadStatus* status);

std::string encode_training_section(const TrainingStats& training);
bool decode_training_section(std::string_view payload, TrainingStats& training,
                             LoadStatus* status);

std::string encode_counters_section(const Counters& counters);
bool decode_counters_section(std::string_view payload, Counters& counters,
                             LoadStatus* status);

std::string encode_training_rows_section(const TrainingRows& rows);
bool decode_training_rows_section(std::string_view payload, TrainingRows& rows,
                                  LoadStatus* status);

// ---- Container scaffolding ----

const Section* require_section(const ContainerReader& reader, SectionId id,
                               const char* what, LoadStatus* status);

/// Parse a container and decode its string table — the common prologue of
/// every load path.
std::optional<ContainerReader> open_container(std::string_view bytes,
                                              DecodedTable& table,
                                              LoadStatus* status);

}  // namespace eid::storage::detail
