#include "storage/state.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/encoding.h"
#include "util/binary.h"
#include "util/executor.h"

// The encoding primitives live in storage::detail (declared in
// storage/encoding.h) so the delta-chain encoder (storage/delta.cpp)
// assembles frames from the exact same codecs the full checkpoint uses.
namespace eid::storage {
namespace detail {
namespace {

// Front-coding restarts every this many table entries, independent of the
// thread count, so the encoded bytes are identical for any parallelism.
constexpr std::size_t kFrontCodeBlock = 1024;

}  // namespace

StringTable sorted_unique(std::vector<std::string_view> strings) {
  std::sort(strings.begin(), strings.end());
  strings.erase(std::unique(strings.begin(), strings.end()), strings.end());
  return strings;
}

std::size_t common_prefix(std::string_view a, std::string_view b) {
  const std::size_t cap = std::min(a.size(), b.size());
  std::size_t n = 0;
  while (n < cap && a[n] == b[n]) ++n;
  return n;
}

/// Section 1: count, then per string (sorted ascending) the byte count
/// shared with the previous entry, the suffix length, and the suffix.
/// Blocks of kFrontCodeBlock entries encode independently (the block's
/// first entry stores a zero prefix), so the big string sets fan out over
/// util::parallel_ranges with bit-stable output.
std::string encode_string_table(const StringTable& table,
                                std::size_t n_threads,
                                util::Executor* executor) {
  const std::size_t n = table.size();
  const std::size_t n_blocks = (n + kFrontCodeBlock - 1) / kFrontCodeBlock;
  std::vector<std::string> blocks(n_blocks);
  util::parallel_ranges(
      executor, n_blocks, n_threads,
      [&](std::size_t, std::size_t first, std::size_t last) {
        for (std::size_t b = first; b < last; ++b) {
          util::ByteWriter out;
          const std::size_t begin = b * kFrontCodeBlock;
          const std::size_t end = std::min(begin + kFrontCodeBlock, n);
          std::size_t bound = 0;
          for (std::size_t i = begin; i < end; ++i) {
            bound += table[i].size() + 10;  // suffix + two varints, worst case
          }
          out.reserve(bound);
          for (std::size_t i = begin; i < end; ++i) {
            const std::string_view text = table[i];
            const std::size_t prefix =
                i == begin ? 0 : common_prefix(table[i - 1], text);
            out.varint(prefix);
            out.varint(text.size() - prefix);
            out.bytes(text.substr(prefix));
          }
          blocks[b] = out.take();
        }
      });
  util::ByteWriter out;
  std::size_t total = 10;
  for (const std::string& block : blocks) total += block.size();
  out.reserve(total);
  out.varint(n);
  for (const std::string& block : blocks) out.bytes(block);
  return out.take();
}

bool decode_string_table(std::string_view payload, DecodedTable& table,
                         LoadStatus* status) {
  util::ByteReader in(payload);
  std::uint64_t count = 0;
  if (!in.varint(count)) {
    set_status(status, LoadError::Truncated, "string table: count cut short");
    return false;
  }
  // Every entry costs at least two bytes (two varints), so a corrupt count
  // cannot force a huge allocation.
  if (count > payload.size()) {
    set_status(status, LoadError::Malformed,
               "string table: count exceeds payload size");
    return false;
  }
  table.arena.clear();
  table.arena.reserve(payload.size() * 2);
  table.spans.clear();
  table.spans.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t prefix = 0;
    std::string_view suffix;
    if (!in.varint(prefix) || !in.str(suffix)) {
      set_status(status, LoadError::Truncated,
                 "string table: entry " + std::to_string(i) + " cut short");
      return false;
    }
    const std::size_t prev_size =
        table.spans.empty() ? 0 : table.spans.back().second;
    if (prefix > prev_size) {
      set_status(status, LoadError::Malformed,
                 "string table: entry " + std::to_string(i) +
                     " shares more bytes than the previous entry has");
      return false;
    }
    const std::size_t length = static_cast<std::size_t>(prefix) + suffix.size();
    if (table.arena.size() + length > (1ull << 31)) {
      set_status(status, LoadError::Malformed, "string table: over 2 GiB");
      return false;
    }
    const std::size_t offset = table.arena.size();
    // Grow capacity up front so the self-append below never reallocates
    // mid-copy (the source range lives in the same buffer).
    if (table.arena.capacity() < offset + length) {
      table.arena.reserve(std::max(offset + length, table.arena.capacity() * 2));
    }
    if (prefix > 0) {
      table.arena.append(table.arena, table.spans.back().first,
                         static_cast<std::size_t>(prefix));
    }
    table.arena.append(suffix);
    table.spans.emplace_back(static_cast<std::uint32_t>(offset),
                             static_cast<std::uint32_t>(length));
  }
  if (!in.at_end()) {
    set_status(status, LoadError::Malformed,
               "string table: trailing bytes after the last entry");
    return false;
  }
  return true;
}

/// Ascending id sequence as first-id + deltas (sorted sets reference the
/// sorted table, so deltas are small).
void encode_id_run(util::ByteWriter& out, const std::vector<std::uint64_t>& ids) {
  std::uint64_t prev = 0;
  for (const std::uint64_t id : ids) {
    out.varint(id - prev);
    prev = id;
  }
}

bool decode_id_run(util::ByteReader& in, std::uint64_t count,
                   std::uint64_t table_size, std::vector<std::uint64_t>& out) {
  // Every delta costs at least one byte, so a corrupt count cannot force a
  // huge allocation.
  if (count > in.remaining()) return false;
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t delta = 0;
    if (!in.varint(delta)) return false;
    // Writers emit sorted unique ids, so every delta after the first is
    // strictly positive; a zero delta would smuggle duplicates past the
    // containers' duplicate-free restore preconditions.
    if (i > 0 && delta == 0) return false;
    prev += delta;
    if (prev >= table_size) return false;
    out.push_back(prev);
  }
  return true;
}

/// Table ids of `strings`, ascending. Sorting the integer ids gives the
/// same order the old sort-strings-then-look-up did (ids are assigned in
/// table sort order) without any string comparisons.
std::vector<std::uint64_t> sorted_ids(const TableIndex& index,
                                      const std::vector<std::string_view>& strings) {
  std::vector<std::uint64_t> ids;
  ids.reserve(strings.size());
  for (const std::string_view text : strings) {
    ids.push_back(index.id(text));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

// ---- Domain history ----

std::vector<std::string_view> domain_views(
    const profile::DomainHistory& history) {
  std::vector<std::string_view> views;
  views.reserve(history.size());
  for (const std::string& domain : history.domains()) views.push_back(domain);
  return views;
}

std::string encode_domain_history_section(const profile::DomainHistory& history,
                                          const TableIndex& index) {
  util::ByteWriter out;
  out.reserve(history.size() * 3 + 20);
  out.varint(history.days_ingested());
  out.varint(history.size());
  encode_id_run(out, sorted_ids(index, domain_views(history)));
  return out.take();
}

bool decode_domain_history_section(std::string_view payload,
                                   const DecodedTable& table,
                                   profile::DomainHistory& history,
                                   LoadStatus* status) {
  util::ByteReader in(payload);
  std::uint64_t days = 0;
  std::uint64_t count = 0;
  if (!in.varint(days) || !in.varint(count)) {
    set_status(status, LoadError::Truncated, "domain history: header cut short");
    return false;
  }
  std::vector<std::uint64_t> ids;
  if (!decode_id_run(in, count, table.size(), ids) || !in.at_end()) {
    set_status(status, LoadError::Malformed,
               "domain history: bad domain id sequence");
    return false;
  }
  profile::DomainHistory::DomainSet domains;
  domains.reserve(ids.size());
  for (const std::uint64_t id : ids) domains.emplace(table.view(id));
  history.restore(std::move(domains), static_cast<std::size_t>(days));
  return true;
}

// ---- UA history ----

struct UaEntryIds {
  std::uint64_t ua_id = 0;  ///< table id; id order == UA string order
  std::uint32_t hosts_begin = 0;  ///< range into a shared flat id array
  std::uint32_t hosts_count = 0;
  bool popular = false;
};

std::vector<std::string_view> ua_views(const profile::UaHistory& history) {
  std::vector<std::string_view> views;
  std::vector<bool> seen(history.distinct_hosts(), false);
  history.for_each_entry_ids([&](const std::string& ua, bool,
                                 std::span<const util::InternId> host_ids) {
    views.push_back(ua);
    for (const util::InternId id : host_ids) {
      if (!seen[id]) {
        seen[id] = true;
        views.push_back(history.host_name(id));
      }
    }
  });
  return views;
}

std::string encode_ua_history_section(const profile::UaHistory& history,
                                      const TableIndex& index) {
  // Resolve each distinct host to its table id once (lazily), not per
  // entry — hosts repeat across thousands of entries. Per-entry host id
  // lists live in one flat array (entries only hold ranges), so the whole
  // encode performs O(1) heap allocations, not one per UA.
  constexpr std::uint64_t kUnresolved = ~std::uint64_t{0};
  std::vector<std::uint64_t> host_table(history.distinct_hosts(), kUnresolved);
  std::vector<UaEntryIds> entries;
  std::vector<std::uint64_t> flat_host_ids;
  entries.reserve(history.distinct_uas());
  flat_host_ids.reserve(history.distinct_uas() * 4);
  history.for_each_entry_ids([&](const std::string& ua, bool popular,
                                 std::span<const util::InternId> host_ids) {
    UaEntryIds entry;
    entry.ua_id = index.id(ua);
    entry.popular = popular;
    entry.hosts_begin = static_cast<std::uint32_t>(flat_host_ids.size());
    for (const util::InternId id : host_ids) {
      if (host_table[id] == kUnresolved) {
        host_table[id] = index.id(history.host_name(id));
      }
      flat_host_ids.push_back(host_table[id]);
    }
    entry.hosts_count =
        static_cast<std::uint32_t>(flat_host_ids.size()) - entry.hosts_begin;
    std::sort(flat_host_ids.begin() + entry.hosts_begin, flat_host_ids.end());
    entries.push_back(entry);
  });
  // Table ids sort exactly like the strings they name.
  std::sort(entries.begin(), entries.end(),
            [](const UaEntryIds& a, const UaEntryIds& b) {
              return a.ua_id < b.ua_id;
            });

  util::ByteWriter out;
  out.reserve(entries.size() * 8 + flat_host_ids.size() * 4 + 20);
  out.varint(history.rare_threshold());
  out.varint(entries.size());
  for (const UaEntryIds& entry : entries) {
    out.varint(entry.ua_id);
    out.u8(entry.popular ? 1 : 0);
    if (entry.popular) continue;  // host set dropped once popular
    out.varint(entry.hosts_count);
    std::uint64_t prev = 0;
    for (std::uint32_t i = 0; i < entry.hosts_count; ++i) {
      const std::uint64_t id = flat_host_ids[entry.hosts_begin + i];
      out.varint(id - prev);
      prev = id;
    }
  }
  return out.take();
}

bool decode_ua_history_section(std::string_view payload,
                               const DecodedTable& table,
                               std::optional<profile::UaHistory>& history,
                               LoadStatus* status) {
  util::ByteReader in(payload);
  std::uint64_t threshold = 0;
  std::uint64_t count = 0;
  if (!in.varint(threshold) || !in.varint(count)) {
    set_status(status, LoadError::Truncated, "ua history: header cut short");
    return false;
  }
  if (threshold == 0) {
    set_status(status, LoadError::Malformed, "ua history: zero rare threshold");
    return false;
  }
  history.emplace(static_cast<std::size_t>(threshold));
  history->reserve_uas(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, in.remaining())));
  // Lazy table-id -> intern-id map: each distinct host name is registered
  // (hashed) exactly once, no matter how many entries reference it.
  std::vector<util::InternId> host_intern(table.size(), util::kInvalidInternId);
  std::vector<std::uint64_t> host_ids;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto bad = [&](const char* what) {
      set_status(status, LoadError::Malformed,
                 "ua history: entry " + std::to_string(i) + ": " + what);
      return false;
    };
    std::uint64_t ua_id = 0;
    std::uint8_t flags = 0;
    if (!in.varint(ua_id) || !in.u8(flags)) return bad("cut short");
    if (ua_id >= table.size()) return bad("ua id out of range");
    if (flags > 1) return bad("unknown flags");
    std::vector<util::InternId> interned;
    if (flags == 0) {
      std::uint64_t n_hosts = 0;
      if (!in.varint(n_hosts)) return bad("host count cut short");
      // A rare entry always holds fewer hosts than the threshold (observe()
      // flips it to popular at the threshold and drops the set).
      if (n_hosts >= threshold) {
        return bad("rare entry at or above the popularity threshold");
      }
      if (!decode_id_run(in, n_hosts, table.size(), host_ids)) {
        return bad("bad host id sequence");
      }
      interned.reserve(host_ids.size());
      for (const std::uint64_t id : host_ids) {
        if (host_intern[id] == util::kInvalidInternId) {
          host_intern[id] = history->restore_host(table.view(id));
        }
        interned.push_back(host_intern[id]);
      }
    }
    history->restore_entry_ids(table.view(ua_id), flags == 1,
                               std::move(interned));
  }
  if (!in.at_end()) {
    set_status(status, LoadError::Malformed,
               "ua history: trailing bytes after the last entry");
    return false;
  }
  return true;
}

// ---- Plain string-set sections (top sites, intel) ----

std::string encode_string_set_section(const std::vector<std::string_view>& strings,
                                      const TableIndex& index) {
  util::ByteWriter out;
  out.reserve(strings.size() * 3 + 10);
  out.varint(strings.size());
  encode_id_run(out, sorted_ids(index, strings));
  return out.take();
}

bool decode_string_set_section(std::string_view payload,
                               const DecodedTable& table, const char* what,
                               std::vector<std::string>& out,
                               LoadStatus* status) {
  util::ByteReader in(payload);
  std::uint64_t count = 0;
  if (!in.varint(count)) {
    set_status(status, LoadError::Truncated,
               std::string(what) + ": count cut short");
    return false;
  }
  std::vector<std::uint64_t> ids;
  if (!decode_id_run(in, count, table.size(), ids) || !in.at_end()) {
    set_status(status, LoadError::Malformed,
               std::string(what) + ": bad id sequence");
    return false;
  }
  out.clear();
  out.reserve(ids.size());
  for (const std::uint64_t id : ids) out.emplace_back(table.view(id));
  return true;
}

std::vector<std::string_view> top_site_views(const profile::TopSitesList& sites) {
  std::vector<std::string_view> views;
  views.reserve(sites.size());
  for (const std::string& site : sites.sites()) views.push_back(site);
  return views;
}

// ---- Config ----

std::string encode_config_section(const core::PipelineConfig& config) {
  util::ByteWriter out;
  out.varint(config.popularity_threshold);
  out.varint(config.ua_rare_threshold);
  out.f64(config.periodicity.bin_width_seconds);
  out.f64(config.periodicity.jeffrey_threshold);
  out.varint(config.periodicity.min_intervals);
  out.u8(config.periodicity.metric == timing::HistogramMetric::L1 ? 1 : 0);
  out.f64(config.cc_threshold);
  out.f64(config.sim_threshold);
  out.varint(config.bp_max_iterations);
  out.varint(config.parallelism.threads);
  out.varint(config.parallelism.shards);
  return out.take();
}

bool decode_config_section(std::string_view payload,
                           core::PipelineConfig& config, LoadStatus* status) {
  util::ByteReader in(payload);
  std::uint64_t popularity = 0;
  std::uint64_t ua_rare = 0;
  std::uint64_t min_intervals = 0;
  std::uint8_t metric = 0;
  std::uint64_t bp_iter = 0;
  std::uint64_t threads = 0;
  std::uint64_t shards = 0;
  if (!in.varint(popularity) || !in.varint(ua_rare) ||
      !in.f64(config.periodicity.bin_width_seconds) ||
      !in.f64(config.periodicity.jeffrey_threshold) ||
      !in.varint(min_intervals) || !in.u8(metric) ||
      !in.f64(config.cc_threshold) || !in.f64(config.sim_threshold) ||
      !in.varint(bp_iter) || !in.varint(threads) || !in.varint(shards) ||
      !in.at_end()) {
    set_status(status, LoadError::Truncated, "config: section cut short");
    return false;
  }
  // The same validity bounds core::parse_pipeline_config enforces.
  if (popularity == 0 || ua_rare == 0 || min_intervals == 0 || bp_iter == 0 ||
      threads == 0 || shards == 0 || metric > 1 ||
      !(config.periodicity.bin_width_seconds > 0) ||
      !(config.periodicity.jeffrey_threshold >= 0)) {
    set_status(status, LoadError::Malformed, "config: value out of range");
    return false;
  }
  config.popularity_threshold = static_cast<std::size_t>(popularity);
  config.ua_rare_threshold = static_cast<std::size_t>(ua_rare);
  config.periodicity.min_intervals = static_cast<std::size_t>(min_intervals);
  config.periodicity.metric = metric == 1 ? timing::HistogramMetric::L1
                                          : timing::HistogramMetric::Jeffrey;
  config.bp_max_iterations = static_cast<std::size_t>(bp_iter);
  config.parallelism.threads = static_cast<std::size_t>(threads);
  config.parallelism.shards = static_cast<std::size_t>(shards);
  return true;
}

// ---- Scored models ----

void encode_doubles(util::ByteWriter& out, const std::vector<double>& values) {
  out.varint(values.size());
  for (const double v : values) out.f64(v);
}

bool decode_doubles(util::ByteReader& in, std::vector<double>& out) {
  std::uint64_t count = 0;
  if (!in.varint(count)) return false;
  if (count > in.remaining() / 8) return false;
  out.clear();
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    double value = 0.0;
    if (!in.f64(value)) return false;
    out.push_back(value);
  }
  return true;
}

std::string encode_model_section(const core::ScoredModel& model) {
  util::ByteWriter out;
  out.f64(model.threshold);
  out.f64(model.score_offset);
  out.f64(model.score_scale);
  out.f64(model.model.intercept);
  out.f64(model.model.intercept_std_error);
  out.f64(model.model.r_squared);
  out.f64(model.model.residual_variance);
  out.varint(model.model.n_samples);
  encode_doubles(out, model.model.weights);
  encode_doubles(out, model.model.std_errors);
  encode_doubles(out, model.model.t_stats);
  encode_doubles(out, model.scaler.mins());
  encode_doubles(out, model.scaler.maxs());
  return out.take();
}

bool decode_model_section(std::string_view payload, const char* what,
                          core::ScoredModel& model, LoadStatus* status) {
  util::ByteReader in(payload);
  std::uint64_t n_samples = 0;
  std::vector<double> mins;
  std::vector<double> maxs;
  if (!in.f64(model.threshold) || !in.f64(model.score_offset) ||
      !in.f64(model.score_scale) || !in.f64(model.model.intercept) ||
      !in.f64(model.model.intercept_std_error) ||
      !in.f64(model.model.r_squared) || !in.f64(model.model.residual_variance) ||
      !in.varint(n_samples) || !decode_doubles(in, model.model.weights) ||
      !decode_doubles(in, model.model.std_errors) ||
      !decode_doubles(in, model.model.t_stats) || !decode_doubles(in, mins) ||
      !decode_doubles(in, maxs) || !in.at_end()) {
    set_status(status, LoadError::Truncated,
               std::string(what) + ": section cut short");
    return false;
  }
  // The consistency bounds core::parse_scored_model enforces.
  if (model.score_scale == 0.0 || mins.size() != maxs.size() ||
      mins.size() != model.model.weights.size()) {
    set_status(status, LoadError::Malformed,
               std::string(what) + ": inconsistent model dimensions");
    return false;
  }
  model.model.n_samples = static_cast<std::size_t>(n_samples);
  model.scaler.restore(std::move(mins), std::move(maxs));
  return true;
}

// ---- Training stats / counters ----

std::string encode_training_section(const TrainingStats& training) {
  util::ByteWriter out;
  out.f64(training.whois_age_sum);
  out.f64(training.whois_validity_sum);
  out.varint(training.whois_samples);
  out.u8(training.models_ready ? 1 : 0);
  return out.take();
}

bool decode_training_section(std::string_view payload, TrainingStats& training,
                             LoadStatus* status) {
  util::ByteReader in(payload);
  std::uint8_t ready = 0;
  if (!in.f64(training.whois_age_sum) || !in.f64(training.whois_validity_sum) ||
      !in.varint(training.whois_samples) || !in.u8(ready) || !in.at_end()) {
    set_status(status, LoadError::Truncated, "training stats: section cut short");
    return false;
  }
  if (ready > 1) {
    set_status(status, LoadError::Malformed,
               "training stats: bad models-ready flag");
    return false;
  }
  training.models_ready = ready == 1;
  return true;
}

// ---- Unfinalized training rows (mid-training crash resume) ----

namespace {

void encode_matrix(util::ByteWriter& out, std::uint64_t cols,
                   const std::vector<double>& values,
                   const std::vector<double>& labels) {
  out.varint(cols);
  out.varint(labels.size());
  for (const double v : values) out.f64(v);
  for (const double v : labels) out.f64(v);
}

bool decode_matrix(util::ByteReader& in, const char* what, std::uint64_t& cols,
                   std::vector<double>& values, std::vector<double>& labels,
                   LoadStatus* status) {
  std::uint64_t rows = 0;
  if (!in.varint(cols) || !in.varint(rows)) {
    set_status(status, LoadError::Truncated,
               std::string("training rows: ") + what + " header cut short");
    return false;
  }
  // 8 bytes per f64, (cols + 1) f64s per row: a corrupt header cannot
  // force a huge allocation past this bound.
  if (cols > 64 || rows > in.remaining() / 8 / (cols + 1)) {
    set_status(status, LoadError::Malformed,
               std::string("training rows: ") + what + " dimensions too large");
    return false;
  }
  values.clear();
  values.reserve(static_cast<std::size_t>(rows * cols));
  labels.clear();
  labels.reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t i = 0; i < rows * cols; ++i) {
    double v = 0.0;
    if (!in.f64(v)) {
      set_status(status, LoadError::Truncated,
                 std::string("training rows: ") + what + " values cut short");
      return false;
    }
    values.push_back(v);
  }
  for (std::uint64_t i = 0; i < rows; ++i) {
    double v = 0.0;
    if (!in.f64(v)) {
      set_status(status, LoadError::Truncated,
                 std::string("training rows: ") + what + " labels cut short");
      return false;
    }
    labels.push_back(v);
  }
  return true;
}

}  // namespace

std::string encode_training_rows_section(const TrainingRows& rows) {
  util::ByteWriter out;
  out.reserve((rows.cc.size() + rows.cc_labels.size() + rows.sim.size() +
               rows.sim_labels.size()) *
                  8 +
              40);
  encode_matrix(out, rows.cc_cols, rows.cc, rows.cc_labels);
  encode_matrix(out, rows.sim_cols, rows.sim, rows.sim_labels);
  return out.take();
}

bool decode_training_rows_section(std::string_view payload, TrainingRows& rows,
                                  LoadStatus* status) {
  util::ByteReader in(payload);
  if (!decode_matrix(in, "c&c", rows.cc_cols, rows.cc, rows.cc_labels,
                     status) ||
      !decode_matrix(in, "similarity", rows.sim_cols, rows.sim,
                     rows.sim_labels, status)) {
    return false;
  }
  if (!in.at_end()) {
    set_status(status, LoadError::Malformed,
               "training rows: trailing bytes after the last matrix");
    return false;
  }
  return true;
}

std::string encode_counters_section(const Counters& counters) {
  util::ByteWriter out;
  out.varint(counters.days_operated);
  return out.take();
}

bool decode_counters_section(std::string_view payload, Counters& counters,
                             LoadStatus* status) {
  util::ByteReader in(payload);
  if (!in.varint(counters.days_operated) || !in.at_end()) {
    set_status(status, LoadError::Truncated, "counters: section cut short");
    return false;
  }
  return true;
}

// ---- Shared container scaffolding ----

const Section* require_section(const ContainerReader& reader, SectionId id,
                               const char* what, LoadStatus* status) {
  const Section* section = reader.find(id);
  if (section == nullptr) {
    set_status(status, LoadError::MissingSection,
               std::string(what) + " section missing");
  }
  return section;
}

/// Parse the container and decode its string table — the common prologue
/// of every load path.
std::optional<ContainerReader> open_container(std::string_view bytes,
                                              DecodedTable& table,
                                              LoadStatus* status) {
  auto reader = ContainerReader::parse(bytes, status);
  if (!reader) return std::nullopt;
  const Section* strings =
      require_section(*reader, SectionId::StringTable, "string table", status);
  if (strings == nullptr) return std::nullopt;
  if (!decode_string_table(strings->payload, table, status)) return std::nullopt;
  return reader;
}

}  // namespace detail

using namespace detail;

namespace {

bool save_container(const ContainerWriter& writer,
                    const std::filesystem::path& path, LoadStatus* status) {
  return write_file_atomic(path, writer.encode(), status);
}

}  // namespace

// ---- Full detector state ----

DetectorStateView view_of(const DetectorState& state) {
  DetectorStateView view;
  view.config = &state.config;
  view.domain_history = &state.domain_history;
  view.ua_history = &state.ua_history;
  view.top_sites = state.has_top_sites ? &state.top_sites : nullptr;
  view.cc_model = &state.cc_model;
  view.sim_model = &state.sim_model;
  view.training = state.training;
  view.intel_domains = &state.intel_domains;
  view.counters = state.counters;
  view.training_rows = &state.training_rows;
  return view;
}

std::string encode_detector_state(const DetectorStateView& state,
                                  std::size_t n_threads,
                                  util::Executor* executor) {
  const bool has_intel =
      state.intel_domains != nullptr && !state.intel_domains->empty();
  std::vector<std::string_view> all = domain_views(*state.domain_history);
  {
    const std::vector<std::string_view> uas = ua_views(*state.ua_history);
    all.insert(all.end(), uas.begin(), uas.end());
  }
  if (state.top_sites != nullptr) {
    const std::vector<std::string_view> sites = top_site_views(*state.top_sites);
    all.insert(all.end(), sites.begin(), sites.end());
  }
  if (has_intel) {
    for (const std::string& domain : *state.intel_domains) {
      all.push_back(domain);
    }
  }
  const StringTable table = sorted_unique(std::move(all));
  const TableIndex index(table);

  ContainerWriter writer;
  writer.add_section(SectionId::StringTable,
                     encode_string_table(table, n_threads, executor));
  writer.add_section(SectionId::Config, encode_config_section(*state.config));
  writer.add_section(
      SectionId::DomainHistory,
      encode_domain_history_section(*state.domain_history, index));
  writer.add_section(SectionId::UaHistory,
                     encode_ua_history_section(*state.ua_history, index));
  if (state.top_sites != nullptr) {
    writer.add_section(
        SectionId::TopSites,
        encode_string_set_section(top_site_views(*state.top_sites), index));
  }
  writer.add_section(SectionId::CcModel, encode_model_section(*state.cc_model));
  writer.add_section(SectionId::SimModel,
                     encode_model_section(*state.sim_model));
  writer.add_section(SectionId::TrainingStats,
                     encode_training_section(state.training));
  if (has_intel) {
    const std::vector<std::string_view> intel(state.intel_domains->begin(),
                                              state.intel_domains->end());
    writer.add_section(SectionId::Intel,
                       encode_string_set_section(intel, index));
  }
  writer.add_section(SectionId::Counters,
                     encode_counters_section(state.counters));
  if (state.training_rows != nullptr && !state.training_rows->empty()) {
    writer.add_section(SectionId::TrainingRows,
                       encode_training_rows_section(*state.training_rows));
  }
  return writer.encode();
}

std::optional<DetectorState> decode_detector_state(std::string_view bytes,
                                                   LoadStatus* status) {
  DecodedTable table;
  const auto reader = open_container(bytes, table, status);
  if (!reader) return std::nullopt;

  DetectorState state;
  const Section* config =
      require_section(*reader, SectionId::Config, "config", status);
  const Section* domains =
      require_section(*reader, SectionId::DomainHistory, "domain history", status);
  const Section* uas =
      require_section(*reader, SectionId::UaHistory, "ua history", status);
  const Section* cc = require_section(*reader, SectionId::CcModel,
                                      "c&c model", status);
  const Section* sim = require_section(*reader, SectionId::SimModel,
                                       "similarity model", status);
  const Section* training = require_section(*reader, SectionId::TrainingStats,
                                            "training stats", status);
  const Section* counters =
      require_section(*reader, SectionId::Counters, "counters", status);
  if (config == nullptr || domains == nullptr || uas == nullptr ||
      cc == nullptr || sim == nullptr || training == nullptr ||
      counters == nullptr) {
    return std::nullopt;
  }
  if (!decode_config_section(config->payload, state.config, status)) {
    return std::nullopt;
  }
  if (!decode_domain_history_section(domains->payload, table,
                                     state.domain_history, status)) {
    return std::nullopt;
  }
  std::optional<profile::UaHistory> ua_history;
  if (!decode_ua_history_section(uas->payload, table, ua_history, status)) {
    return std::nullopt;
  }
  state.ua_history = std::move(*ua_history);
  if (const Section* sites = reader->find(SectionId::TopSites)) {
    std::vector<std::string> names;
    if (!decode_string_set_section(sites->payload, table, "top sites", names,
                                   status)) {
      return std::nullopt;
    }
    for (const std::string& name : names) state.top_sites.add(name);
    state.has_top_sites = true;
  }
  if (!decode_model_section(cc->payload, "c&c model", state.cc_model, status) ||
      !decode_model_section(sim->payload, "similarity model", state.sim_model,
                            status) ||
      !decode_training_section(training->payload, state.training, status) ||
      !decode_counters_section(counters->payload, state.counters, status)) {
    return std::nullopt;
  }
  if (const Section* intel = reader->find(SectionId::Intel)) {
    if (!decode_string_set_section(intel->payload, table, "intel",
                                   state.intel_domains, status)) {
      return std::nullopt;
    }
  }
  if (const Section* rows = reader->find(SectionId::TrainingRows)) {
    if (!decode_training_rows_section(rows->payload, state.training_rows,
                                      status)) {
      return std::nullopt;
    }
  }
  return state;
}

namespace {

struct StateMetrics {
  obs::Counter& saves = obs::metrics().counter("eid_state_saves_total");
  obs::Counter& loads = obs::metrics().counter("eid_state_loads_total");
  obs::Counter& saved_bytes =
      obs::metrics().counter("eid_state_saved_bytes_total");
  obs::Counter& loaded_bytes =
      obs::metrics().counter("eid_state_loaded_bytes_total");
  obs::Histogram& save_seconds = obs::metrics().histogram(
      "eid_state_save_seconds", obs::duration_buckets());
  obs::Histogram& load_seconds = obs::metrics().histogram(
      "eid_state_load_seconds", obs::duration_buckets());
};

StateMetrics& state_metrics() {
  static StateMetrics metrics;
  return metrics;
}

}  // namespace

bool save_detector_state(const DetectorStateView& state,
                         const std::filesystem::path& path,
                         std::size_t n_threads, LoadStatus* status,
                         util::Executor* executor) {
  const obs::TraceSpan span("state_save", "storage");
  const auto start = std::chrono::steady_clock::now();
  const std::string bytes = encode_detector_state(state, n_threads, executor);
  const bool ok = write_file_atomic(path, bytes, status);
  StateMetrics& metrics = state_metrics();
  if (ok) {
    metrics.saves.add(1);
    metrics.saved_bytes.add(bytes.size());
  }
  metrics.save_seconds.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return ok;
}

std::optional<DetectorState> load_detector_state(
    const std::filesystem::path& path, LoadStatus* status) {
  const obs::TraceSpan span("state_load", "storage");
  const auto start = std::chrono::steady_clock::now();
  const auto bytes = read_file(path, status);
  if (!bytes) return std::nullopt;
  auto state = decode_detector_state(*bytes, status);
  StateMetrics& metrics = state_metrics();
  if (state) {
    metrics.loads.add(1);
    metrics.loaded_bytes.add(bytes->size());
  }
  metrics.load_seconds.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return state;
}

// ---- Per-component files ----

bool save_domain_history(const profile::DomainHistory& history,
                         const std::filesystem::path& path,
                         std::size_t n_threads, LoadStatus* status) {
  const StringTable table = sorted_unique(domain_views(history));
  const TableIndex index(table);
  ContainerWriter writer;
  writer.add_section(SectionId::StringTable,
                     encode_string_table(table, n_threads));
  writer.add_section(SectionId::DomainHistory,
                     encode_domain_history_section(history, index));
  return save_container(writer, path, status);
}

std::optional<profile::DomainHistory> decode_domain_history(
    std::string_view bytes, LoadStatus* status) {
  DecodedTable table;
  const auto reader = open_container(bytes, table, status);
  if (!reader) return std::nullopt;
  const Section* section =
      require_section(*reader, SectionId::DomainHistory, "domain history", status);
  if (section == nullptr) return std::nullopt;
  profile::DomainHistory history;
  if (!decode_domain_history_section(section->payload, table, history, status)) {
    return std::nullopt;
  }
  return history;
}

std::optional<profile::DomainHistory> load_domain_history(
    const std::filesystem::path& path, LoadStatus* status) {
  const auto bytes = read_file(path, status);
  if (!bytes) return std::nullopt;
  return decode_domain_history(*bytes, status);
}

bool save_ua_history(const profile::UaHistory& history,
                     const std::filesystem::path& path, std::size_t n_threads,
                     LoadStatus* status) {
  const StringTable table = sorted_unique(ua_views(history));
  const TableIndex index(table);
  ContainerWriter writer;
  writer.add_section(SectionId::StringTable,
                     encode_string_table(table, n_threads));
  writer.add_section(SectionId::UaHistory,
                     encode_ua_history_section(history, index));
  return save_container(writer, path, status);
}

std::optional<profile::UaHistory> decode_ua_history(std::string_view bytes,
                                                    LoadStatus* status) {
  DecodedTable table;
  const auto reader = open_container(bytes, table, status);
  if (!reader) return std::nullopt;
  const Section* section =
      require_section(*reader, SectionId::UaHistory, "ua history", status);
  if (section == nullptr) return std::nullopt;
  std::optional<profile::UaHistory> history;
  if (!decode_ua_history_section(section->payload, table, history, status)) {
    return std::nullopt;
  }
  return history;
}

std::optional<profile::UaHistory> load_ua_history(
    const std::filesystem::path& path, LoadStatus* status) {
  const auto bytes = read_file(path, status);
  if (!bytes) return std::nullopt;
  return decode_ua_history(*bytes, status);
}

bool save_top_sites(const profile::TopSitesList& sites,
                    const std::filesystem::path& path, std::size_t n_threads,
                    LoadStatus* status) {
  const StringTable table = sorted_unique(top_site_views(sites));
  const TableIndex index(table);
  ContainerWriter writer;
  writer.add_section(SectionId::StringTable,
                     encode_string_table(table, n_threads));
  writer.add_section(SectionId::TopSites,
                     encode_string_set_section(top_site_views(sites), index));
  return save_container(writer, path, status);
}

std::optional<profile::TopSitesList> load_top_sites(
    const std::filesystem::path& path, LoadStatus* status) {
  const auto bytes = read_file(path, status);
  if (!bytes) return std::nullopt;
  DecodedTable table;
  const auto reader = open_container(*bytes, table, status);
  if (!reader) return std::nullopt;
  const Section* section =
      require_section(*reader, SectionId::TopSites, "top sites", status);
  if (section == nullptr) return std::nullopt;
  std::vector<std::string> names;
  if (!decode_string_set_section(section->payload, table, "top sites", names,
                                 status)) {
    return std::nullopt;
  }
  profile::TopSitesList sites;
  for (const std::string& name : names) sites.add(name);
  return sites;
}

bool save_scored_model(const core::ScoredModel& model,
                       const std::filesystem::path& path, LoadStatus* status) {
  ContainerWriter writer;
  writer.add_section(SectionId::StringTable, encode_string_table({}, 1));
  writer.add_section(SectionId::CcModel, encode_model_section(model));
  return save_container(writer, path, status);
}

std::optional<core::ScoredModel> load_scored_model(
    const std::filesystem::path& path, LoadStatus* status) {
  const auto bytes = read_file(path, status);
  if (!bytes) return std::nullopt;
  DecodedTable table;
  const auto reader = open_container(*bytes, table, status);
  if (!reader) return std::nullopt;
  const Section* section = reader->find(SectionId::CcModel);
  if (section == nullptr) section = reader->find(SectionId::SimModel);
  if (section == nullptr) {
    set_status(status, LoadError::MissingSection, "model section missing");
    return std::nullopt;
  }
  core::ScoredModel model;
  if (!decode_model_section(section->payload, "model", model, status)) {
    return std::nullopt;
  }
  return model;
}

}  // namespace eid::storage
