#include "storage/delta.h"

#include <algorithm>
#include <fstream>

#include "storage/encoding.h"
#include "util/binary.h"
#include "util/crc32.h"
#include "util/fault_injection.h"

namespace eid::storage {

using namespace detail;

std::filesystem::path delta_chain_path(const std::filesystem::path& path) {
  return std::filesystem::path(path.string() + ".delta");
}

// ---- Frame encoding ----

namespace {

std::string encode_delta_header(const DeltaInputs& inputs) {
  util::ByteWriter out;
  out.u32le(inputs.base_crc);
  out.varint(inputs.seq);
  out.varint(static_cast<std::uint64_t>(inputs.day));
  return out.take();
}

std::string encode_domain_delta(const DeltaInputs& inputs,
                                const TableIndex& index) {
  util::ByteWriter out;
  out.reserve(inputs.new_domains->size() * 3 + 20);
  out.varint(inputs.days_ingested);
  out.varint(inputs.new_domains->size());
  std::vector<std::string_view> views(inputs.new_domains->begin(),
                                      inputs.new_domains->end());
  encode_id_run(out, sorted_ids(index, views));
  return out.take();
}

std::string encode_ua_delta(const DeltaInputs& inputs,
                            const TableIndex& index) {
  struct EntryIds {
    std::uint64_t ua_id = 0;
    bool popular = false;
    std::vector<std::uint64_t> host_ids;
  };
  std::vector<EntryIds> entries;
  entries.reserve(inputs.ua_entries.size());
  for (const DeltaUaEntryView& entry : inputs.ua_entries) {
    EntryIds ids;
    ids.ua_id = index.id(entry.ua);
    ids.popular = entry.popular;
    if (!entry.popular) ids.host_ids = sorted_ids(index, entry.hosts);
    entries.push_back(std::move(ids));
  }
  // Table ids sort exactly like the strings they name, so the frame is
  // byte-stable regardless of journal (first-touch) order.
  std::sort(entries.begin(), entries.end(),
            [](const EntryIds& a, const EntryIds& b) {
              return a.ua_id < b.ua_id;
            });
  util::ByteWriter out;
  out.reserve(entries.size() * 8 + 20);
  out.varint(entries.size());
  for (const EntryIds& entry : entries) {
    out.varint(entry.ua_id);
    out.u8(entry.popular ? 1 : 0);
    if (entry.popular) continue;
    out.varint(entry.host_ids.size());
    encode_id_run(out, entry.host_ids);
  }
  return out.take();
}

std::string encode_cursor_section(const DeltaInputs& inputs) {
  util::ByteWriter out;
  out.varint(static_cast<std::uint64_t>(inputs.cursor_day));
  out.varint(inputs.cursor_offset);
  return out.take();
}

std::string encode_incidents_section(const core::IncidentStore& store,
                                     const TableIndex& index) {
  const std::vector<core::Incident> incidents = store.incidents();
  util::ByteWriter out;
  out.varint(static_cast<std::uint64_t>(store.next_id()));
  out.varint(incidents.size());
  std::vector<std::string_view> views;
  for (const core::Incident& incident : incidents) {
    out.varint(static_cast<std::uint64_t>(incident.id));
    out.varint(static_cast<std::uint64_t>(incident.first_seen));
    out.varint(static_cast<std::uint64_t>(incident.last_seen));
    out.varint(incident.days_active);
    out.varint(static_cast<std::uint64_t>(incident.first_evidence));
    out.varint(static_cast<std::uint64_t>(incident.last_evidence));
    views.assign(incident.domains.begin(), incident.domains.end());
    out.varint(views.size());
    encode_id_run(out, sorted_ids(index, views));
    views.assign(incident.hosts.begin(), incident.hosts.end());
    out.varint(views.size());
    encode_id_run(out, sorted_ids(index, views));
  }
  return out.take();
}

}  // namespace

std::string encode_delta_frame(const DeltaInputs& inputs) {
  // Frame-local string table over everything the frame references.
  std::vector<std::string_view> all;
  for (const std::string& domain : *inputs.new_domains) all.push_back(domain);
  for (const DeltaUaEntryView& entry : inputs.ua_entries) {
    all.push_back(entry.ua);
    all.insert(all.end(), entry.hosts.begin(), entry.hosts.end());
  }
  if (inputs.intel_domains != nullptr) {
    for (const std::string& domain : *inputs.intel_domains) {
      all.push_back(domain);
    }
  }
  if (inputs.top_sites != nullptr) {
    const std::vector<std::string_view> sites = top_site_views(*inputs.top_sites);
    all.insert(all.end(), sites.begin(), sites.end());
  }
  // Materialized (not iterated as a temporary): the views pushed into
  // `all` must stay alive until the string table below copies them.
  std::vector<core::Incident> incident_snapshot;
  if (inputs.incidents != nullptr) {
    incident_snapshot = inputs.incidents->incidents();
    for (const core::Incident& incident : incident_snapshot) {
      for (const std::string& domain : incident.domains) {
        all.push_back(domain);
      }
      for (const std::string& host : incident.hosts) all.push_back(host);
    }
  }
  const StringTable table = sorted_unique(std::move(all));
  const TableIndex index(table);

  ContainerWriter writer;
  writer.add_section(SectionId::DeltaHeader, encode_delta_header(inputs));
  writer.add_section(SectionId::StringTable, encode_string_table(table, 1));
  writer.add_section(SectionId::DomainDelta,
                     encode_domain_delta(inputs, index));
  writer.add_section(SectionId::UaDelta, encode_ua_delta(inputs, index));
  writer.add_section(SectionId::Config, encode_config_section(*inputs.config));
  writer.add_section(SectionId::CcModel,
                     encode_model_section(*inputs.cc_model));
  writer.add_section(SectionId::SimModel,
                     encode_model_section(*inputs.sim_model));
  writer.add_section(SectionId::TrainingStats,
                     encode_training_section(inputs.training));
  writer.add_section(SectionId::Counters,
                     encode_counters_section(inputs.counters));
  if (inputs.training_rows != nullptr && !inputs.training_rows->empty()) {
    writer.add_section(SectionId::TrainingRows,
                       encode_training_rows_section(*inputs.training_rows));
  }
  if (inputs.intel_domains != nullptr) {
    const std::vector<std::string_view> intel(inputs.intel_domains->begin(),
                                              inputs.intel_domains->end());
    writer.add_section(SectionId::Intel,
                       encode_string_set_section(intel, index));
  }
  if (inputs.top_sites != nullptr) {
    writer.add_section(
        SectionId::TopSites,
        encode_string_set_section(top_site_views(*inputs.top_sites), index));
  }
  if (inputs.has_cursor) {
    writer.add_section(SectionId::RtCursor, encode_cursor_section(inputs));
  }
  if (inputs.incidents != nullptr) {
    writer.add_section(SectionId::Incidents,
                       encode_incidents_section(*inputs.incidents, index));
  }
  return writer.encode();
}

// ---- Frame decoding ----

namespace {

bool decode_delta_header(std::string_view payload, DeltaFrame& frame,
                         LoadStatus* status) {
  util::ByteReader in(payload);
  std::uint64_t seq = 0;
  std::uint64_t day = 0;
  if (!in.u32le(frame.base_crc) || !in.varint(seq) || !in.varint(day) ||
      !in.at_end()) {
    set_status(status, LoadError::Truncated, "delta header: cut short");
    return false;
  }
  if (seq == 0) {
    set_status(status, LoadError::Malformed, "delta header: zero seq");
    return false;
  }
  frame.seq = seq;
  frame.day = static_cast<std::int64_t>(day);
  return true;
}

bool decode_domain_delta(std::string_view payload, const DecodedTable& table,
                         DeltaFrame& frame, LoadStatus* status) {
  util::ByteReader in(payload);
  std::uint64_t count = 0;
  if (!in.varint(frame.days_ingested) || !in.varint(count)) {
    set_status(status, LoadError::Truncated, "domain delta: header cut short");
    return false;
  }
  std::vector<std::uint64_t> ids;
  if (!decode_id_run(in, count, table.size(), ids) || !in.at_end()) {
    set_status(status, LoadError::Malformed,
               "domain delta: bad domain id sequence");
    return false;
  }
  frame.new_domains.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    frame.new_domains.emplace_back(table.view(id));
  }
  return true;
}

bool decode_ua_delta(std::string_view payload, const DecodedTable& table,
                     DeltaFrame& frame, LoadStatus* status) {
  util::ByteReader in(payload);
  std::uint64_t count = 0;
  if (!in.varint(count)) {
    set_status(status, LoadError::Truncated, "ua delta: header cut short");
    return false;
  }
  if (count > in.remaining()) {
    set_status(status, LoadError::Malformed, "ua delta: count too large");
    return false;
  }
  frame.ua_entries.reserve(static_cast<std::size_t>(count));
  std::vector<std::uint64_t> host_ids;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto bad = [&](const char* what) {
      set_status(status, LoadError::Malformed,
                 "ua delta: entry " + std::to_string(i) + ": " + what);
      return false;
    };
    std::uint64_t ua_id = 0;
    std::uint8_t flags = 0;
    if (!in.varint(ua_id) || !in.u8(flags)) return bad("cut short");
    if (ua_id >= table.size()) return bad("ua id out of range");
    if (flags > 1) return bad("unknown flags");
    DeltaFrame::UaEntry entry;
    entry.ua = std::string(table.view(ua_id));
    entry.popular = flags == 1;
    if (!entry.popular) {
      std::uint64_t n_hosts = 0;
      if (!in.varint(n_hosts)) return bad("host count cut short");
      if (!decode_id_run(in, n_hosts, table.size(), host_ids)) {
        return bad("bad host id sequence");
      }
      entry.hosts.reserve(host_ids.size());
      for (const std::uint64_t id : host_ids) {
        entry.hosts.emplace_back(table.view(id));
      }
    }
    frame.ua_entries.push_back(std::move(entry));
  }
  if (!in.at_end()) {
    set_status(status, LoadError::Malformed,
               "ua delta: trailing bytes after the last entry");
    return false;
  }
  return true;
}

bool decode_cursor_section(std::string_view payload, DeltaFrame& frame,
                           LoadStatus* status) {
  util::ByteReader in(payload);
  std::uint64_t day = 0;
  if (!in.varint(day) || !in.varint(frame.cursor_offset) || !in.at_end()) {
    set_status(status, LoadError::Truncated, "rt cursor: cut short");
    return false;
  }
  frame.cursor_day = static_cast<std::int64_t>(day);
  frame.has_cursor = true;
  return true;
}

bool decode_incidents_section(std::string_view payload,
                              const DecodedTable& table, DeltaFrame& frame,
                              LoadStatus* status) {
  util::ByteReader in(payload);
  std::uint64_t next_id = 0;
  std::uint64_t count = 0;
  if (!in.varint(next_id) || !in.varint(count)) {
    set_status(status, LoadError::Truncated, "incidents: header cut short");
    return false;
  }
  if (next_id > (1u << 30) || count > in.remaining()) {
    set_status(status, LoadError::Malformed, "incidents: counts too large");
    return false;
  }
  frame.incidents_next_id = static_cast<int>(next_id);
  frame.incidents.reserve(static_cast<std::size_t>(count));
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto bad = [&](const char* what) {
      set_status(status, LoadError::Malformed,
                 "incidents: entry " + std::to_string(i) + ": " + what);
      return false;
    };
    std::uint64_t id = 0;
    std::uint64_t first_seen = 0;
    std::uint64_t last_seen = 0;
    std::uint64_t days_active = 0;
    std::uint64_t first_evidence = 0;
    std::uint64_t last_evidence = 0;
    if (!in.varint(id) || !in.varint(first_seen) || !in.varint(last_seen) ||
        !in.varint(days_active) || !in.varint(first_evidence) ||
        !in.varint(last_evidence)) {
      return bad("cut short");
    }
    if (id >= next_id) return bad("id at or past next_id");
    core::Incident incident;
    incident.id = static_cast<int>(id);
    incident.first_seen = static_cast<util::Day>(first_seen);
    incident.last_seen = static_cast<util::Day>(last_seen);
    incident.days_active = static_cast<std::size_t>(days_active);
    incident.first_evidence = static_cast<util::TimePoint>(first_evidence);
    incident.last_evidence = static_cast<util::TimePoint>(last_evidence);
    std::uint64_t n = 0;
    if (!in.varint(n)) return bad("domain count cut short");
    if (!decode_id_run(in, n, table.size(), ids)) {
      return bad("bad domain id sequence");
    }
    for (const std::uint64_t d : ids) {
      incident.domains.emplace(table.view(d));
    }
    if (!in.varint(n)) return bad("host count cut short");
    if (!decode_id_run(in, n, table.size(), ids)) {
      return bad("bad host id sequence");
    }
    for (const std::uint64_t h : ids) incident.hosts.emplace(table.view(h));
    frame.incidents.push_back(std::move(incident));
  }
  if (!in.at_end()) {
    set_status(status, LoadError::Malformed,
               "incidents: trailing bytes after the last entry");
    return false;
  }
  frame.has_incidents = true;
  return true;
}

}  // namespace

std::optional<DeltaFrame> decode_delta_frame(std::string_view payload,
                                             LoadStatus* status) {
  DecodedTable table;
  const auto reader = open_container(payload, table, status);
  if (!reader) return std::nullopt;

  DeltaFrame frame;
  const Section* header =
      require_section(*reader, SectionId::DeltaHeader, "delta header", status);
  const Section* domains =
      require_section(*reader, SectionId::DomainDelta, "domain delta", status);
  const Section* uas =
      require_section(*reader, SectionId::UaDelta, "ua delta", status);
  const Section* config =
      require_section(*reader, SectionId::Config, "config", status);
  const Section* cc =
      require_section(*reader, SectionId::CcModel, "c&c model", status);
  const Section* sim =
      require_section(*reader, SectionId::SimModel, "similarity model", status);
  const Section* training = require_section(*reader, SectionId::TrainingStats,
                                            "training stats", status);
  const Section* counters =
      require_section(*reader, SectionId::Counters, "counters", status);
  if (header == nullptr || domains == nullptr || uas == nullptr ||
      config == nullptr || cc == nullptr || sim == nullptr ||
      training == nullptr || counters == nullptr) {
    return std::nullopt;
  }
  if (!decode_delta_header(header->payload, frame, status) ||
      !decode_domain_delta(domains->payload, table, frame, status) ||
      !decode_ua_delta(uas->payload, table, frame, status) ||
      !decode_config_section(config->payload, frame.config, status) ||
      !decode_model_section(cc->payload, "c&c model", frame.cc_model, status) ||
      !decode_model_section(sim->payload, "similarity model", frame.sim_model,
                            status) ||
      !decode_training_section(training->payload, frame.training, status) ||
      !decode_counters_section(counters->payload, frame.counters, status)) {
    return std::nullopt;
  }
  if (const Section* rows = reader->find(SectionId::TrainingRows)) {
    if (!decode_training_rows_section(rows->payload, frame.training_rows,
                                      status)) {
      return std::nullopt;
    }
  }
  if (const Section* intel = reader->find(SectionId::Intel)) {
    if (!decode_string_set_section(intel->payload, table, "intel",
                                   frame.intel_domains, status)) {
      return std::nullopt;
    }
    frame.has_intel = true;
  }
  if (const Section* sites = reader->find(SectionId::TopSites)) {
    if (!decode_string_set_section(sites->payload, table, "top sites",
                                   frame.top_sites, status)) {
      return std::nullopt;
    }
    frame.has_top_sites = true;
  }
  if (const Section* cursor = reader->find(SectionId::RtCursor)) {
    if (!decode_cursor_section(cursor->payload, frame, status)) {
      return std::nullopt;
    }
  }
  if (const Section* incidents = reader->find(SectionId::Incidents)) {
    if (!decode_incidents_section(incidents->payload, table, frame, status)) {
      return std::nullopt;
    }
  }
  return frame;
}

// ---- Chain file I/O ----

namespace {

/// Frame-scan chain bytes: collect every complete CRC-clean frame and note
/// where (and why) the clean prefix ends.
void scan_chain_bytes(std::string_view bytes, DeltaChainInfo& info) {
  constexpr std::uint64_t kHeader = 12;  // magic(8) + size(4)
  info.file_bytes = bytes.size();
  std::uint64_t offset = 0;
  std::size_t n = 0;
  while (offset < bytes.size()) {
    const std::string at = "frame " + std::to_string(n);
    if (bytes.size() - offset < kHeader) {
      info.tail_detail = at + ": header cut short";
      break;
    }
    if (bytes.substr(offset, kDeltaMagic.size()) != kDeltaMagic) {
      info.tail_detail = at + ": bad frame magic";
      break;
    }
    std::uint32_t size = 0;
    for (int i = 0; i < 4; ++i) {
      size |= static_cast<std::uint32_t>(static_cast<unsigned char>(
                  bytes[offset + kDeltaMagic.size() + i]))
              << (8 * i);
    }
    if (bytes.size() - offset - kHeader < static_cast<std::uint64_t>(size) + 4) {
      info.tail_detail = at + ": payload cut short";
      break;
    }
    const std::string_view payload = bytes.substr(offset + kHeader, size);
    std::uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i) {
      stored_crc |= static_cast<std::uint32_t>(static_cast<unsigned char>(
                        bytes[offset + kHeader + size + i]))
                    << (8 * i);
    }
    if (util::crc32(payload) != stored_crc) {
      info.tail_detail = at + ": checksum mismatch";
      break;
    }
    info.frames.push_back({offset, std::string(payload)});
    offset += kHeader + size + 4;
    ++n;
  }
  info.valid_bytes = offset;
  info.torn_tail = offset < bytes.size();
}

}  // namespace

bool read_delta_chain(const std::filesystem::path& chain_path,
                      DeltaChainInfo& info, LoadStatus* status) {
  info = DeltaChainInfo{};
  LoadStatus read_status;
  const auto bytes = read_file(chain_path, &read_status);
  if (!bytes) {
    if (read_status.error == LoadError::FileNotFound) return true;  // no chain
    if (status != nullptr) *status = read_status;
    return false;
  }
  scan_chain_bytes(*bytes, info);
  return true;
}

bool append_delta_frame(const std::filesystem::path& chain_path,
                        std::string_view payload, LoadStatus* status) {
  util::FaultInjector& faults = util::FaultInjector::instance();
  // A previous crash may have left a torn tail; drop it so the new frame
  // starts at a clean boundary. (The scan reads without fault probes —
  // injected read faults target the load path, not this maintenance read.)
  {
    std::ifstream in(chain_path, std::ios::binary);
    if (in) {
      std::string bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
      in.close();
      DeltaChainInfo info;
      scan_chain_bytes(bytes, info);
      if (info.torn_tail) {
        std::error_code ec;
        std::filesystem::resize_file(chain_path, info.valid_bytes, ec);
        if (ec) {
          set_status(status, LoadError::IoError,
                     "cannot truncate torn tail of " + chain_path.string() +
                         ": " + ec.message());
          return false;
        }
      }
    }
  }
  if (faults.any_armed() &&
      faults.fail_open(util::FaultPoint::StorageOpenWrite)) {
    set_status(status, LoadError::IoError,
               "injected open failure on " + chain_path.string());
    return false;
  }
  util::ByteWriter frame;
  frame.reserve(kDeltaMagic.size() + 8 + payload.size());
  frame.bytes(kDeltaMagic);
  frame.u32le(static_cast<std::uint32_t>(payload.size()));
  frame.bytes(payload);
  frame.u32le(util::crc32(payload));
  const std::string& bytes = frame.data();

  std::ofstream out(chain_path, std::ios::binary | std::ios::app);
  if (!out) {
    set_status(status, LoadError::IoError,
               "cannot open " + chain_path.string());
    return false;
  }
  std::size_t allowed = bytes.size();
  bool injected_fail = false;
  if (faults.any_armed()) {
    allowed = faults.filter_write(util::FaultPoint::StorageAppend,
                                  bytes.size(), injected_fail);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(allowed));
  out.flush();
  if (injected_fail) {
    // Simulated crash mid-append: the torn tail stays on disk — exactly
    // what a real crash leaves — and the next append or load handles it.
    set_status(status, LoadError::IoError,
               "injected torn append on " + chain_path.string());
    return false;
  }
  if (!out) {
    set_status(status, LoadError::IoError,
               "append failed on " + chain_path.string());
    return false;
  }
  out.close();
  sync_path_durable(chain_path);
  return true;
}

// ---- Applying frames ----

bool apply_delta_frame(DetectorState& state, const DeltaFrame& frame,
                       LoadStatus* status) {
  state.config = frame.config;
  state.cc_model = frame.cc_model;
  state.sim_model = frame.sim_model;
  state.training = frame.training;
  state.counters = frame.counters;
  state.domain_history.absorb(frame.new_domains,
                              static_cast<std::size_t>(frame.days_ingested));
  std::vector<std::string_view> host_views;
  for (const DeltaFrame::UaEntry& entry : frame.ua_entries) {
    host_views.assign(entry.hosts.begin(), entry.hosts.end());
    state.ua_history.restore_entry(
        entry.ua, entry.popular,
        std::span<const std::string_view>(host_views.data(),
                                          host_views.size()));
  }
  if (!frame.training_rows.empty()) {
    TrainingRows& rows = state.training_rows;
    const TrainingRows& add = frame.training_rows;
    if (!add.cc_labels.empty()) {
      if (rows.cc_labels.empty()) {
        rows.cc_cols = add.cc_cols;
      } else if (rows.cc_cols != add.cc_cols) {
        set_status(status, LoadError::Malformed,
                   "delta frame: c&c training-row width changed mid-chain");
        return false;
      }
      rows.cc.insert(rows.cc.end(), add.cc.begin(), add.cc.end());
      rows.cc_labels.insert(rows.cc_labels.end(), add.cc_labels.begin(),
                            add.cc_labels.end());
    }
    if (!add.sim_labels.empty()) {
      if (rows.sim_labels.empty()) {
        rows.sim_cols = add.sim_cols;
      } else if (rows.sim_cols != add.sim_cols) {
        set_status(status, LoadError::Malformed,
                   "delta frame: similarity training-row width changed "
                   "mid-chain");
        return false;
      }
      rows.sim.insert(rows.sim.end(), add.sim.begin(), add.sim.end());
      rows.sim_labels.insert(rows.sim_labels.end(), add.sim_labels.begin(),
                             add.sim_labels.end());
    }
  }
  if (frame.training.models_ready) {
    // Once finalize_training() happened the rows will never be re-solved;
    // an uninterrupted run drops them, so a resumed one does too.
    state.training_rows = TrainingRows{};
  }
  if (frame.has_intel) state.intel_domains = frame.intel_domains;
  if (frame.has_top_sites) {
    state.top_sites = profile::TopSitesList{};
    for (const std::string& site : frame.top_sites) state.top_sites.add(site);
    state.has_top_sites = true;
  }
  return true;
}

// ---- Chain-aware load ----

std::optional<DetectorState> load_detector_state_chain(
    const std::filesystem::path& path, ChainLoadReport* report,
    LoadStatus* status) {
  const auto bytes = read_file(path, status);
  if (!bytes) return std::nullopt;
  auto state = decode_detector_state(*bytes, status);
  if (!state) return std::nullopt;

  ChainLoadReport local;
  ChainLoadReport& out = report != nullptr ? *report : local;
  out = ChainLoadReport{};
  out.base_crc = util::crc32(*bytes);

  DeltaChainInfo info;
  LoadStatus chain_status;
  if (!read_delta_chain(delta_chain_path(path), info, &chain_status)) {
    // The base loaded; an unreadable chain degrades to it.
    out.degraded = true;
    out.detail = chain_status.detail;
    return state;
  }
  out.torn_tail = info.torn_tail;
  if (info.torn_tail && out.detail.empty()) out.detail = info.tail_detail;

  std::uint64_t expect_seq = 1;
  for (std::size_t i = 0; i < info.frames.size(); ++i) {
    LoadStatus frame_status;
    const auto frame = decode_delta_frame(info.frames[i].payload,
                                          &frame_status);
    const auto drop = [&](const std::string& why) {
      out.degraded = true;
      out.frames_dropped = info.frames.size() - i;
      out.detail = "frame " + std::to_string(i) + ": " + why;
    };
    if (!frame) {
      drop(frame_status.detail);
      break;
    }
    if (frame->base_crc != out.base_crc) {
      drop("built on a different base checkpoint");
      break;
    }
    if (frame->seq != expect_seq) {
      drop("sequence gap (frame says " + std::to_string(frame->seq) +
           ", chain expects " + std::to_string(expect_seq) + ")");
      break;
    }
    LoadStatus apply_status;
    if (!apply_delta_frame(*state, *frame, &apply_status)) {
      // The state may hold a partial apply; reload the clean prefix.
      drop(apply_status.detail);
      auto clean = decode_detector_state(*bytes, status);
      if (!clean) return std::nullopt;
      for (std::size_t j = 0; j < i; ++j) {
        const auto redo = decode_delta_frame(info.frames[j].payload, nullptr);
        if (!redo || !apply_delta_frame(*clean, *redo, nullptr)) break;
      }
      state = std::move(clean);
      break;
    }
    ++out.frames_applied;
    out.last_seq = frame->seq;
    out.applied_bytes = info.frames[i].offset + 12 +
                        info.frames[i].payload.size() + 4;
    ++expect_seq;
    if (frame->has_cursor) {
      out.has_cursor = true;
      out.cursor_day = frame->cursor_day;
      out.cursor_offset = frame->cursor_offset;
    }
    if (frame->has_incidents) {
      out.has_incidents = true;
      out.incidents_next_id = frame->incidents_next_id;
      out.incidents = frame->incidents;
    }
  }
  return state;
}

}  // namespace eid::storage
