#include "eval/lanl_runner.h"

#include <algorithm>

#include "api/sources.h"

namespace eid::eval {
namespace {

core::PipelineConfig pipeline_config(const LanlRunnerConfig& config) {
  core::PipelineConfig out;
  out.popularity_threshold = config.popularity_threshold;
  out.periodicity = config.periodicity;
  return out;
}

}  // namespace

LanlRunner::LanlRunner(sim::LanlScenario& scenario, LanlRunnerConfig config)
    : scenario_(scenario),
      config_(config),
      detector_(pipeline_config(config), scenario.simulator().whois()) {}

void LanlRunner::bootstrap() {
  api::SimSource source(scenario_.simulator(), scenario_.bootstrap_begin(),
                        scenario_.bootstrap_end());
  detector_.ingest(source);
}

void LanlRunner::update_history_events(
    const std::vector<logs::ConnEvent>& events) {
  detector_.pipeline().update_histories(events);
}

core::DayAnalysis LanlRunner::analyze_day(util::Day day) {
  api::SimSource source(scenario_.simulator(), day, day);
  return detector_.analyze_stream(source, day);
}

core::DayAnalysis LanlRunner::analyze_events(
    const std::vector<logs::ConnEvent>& events, util::Day day) const {
  api::VectorSource source(day, &events);
  return detector_.analyze_stream(source, day);
}

LanlDayResult LanlRunner::run_case(const sim::LanlCase& challenge,
                                   const core::DayAnalysis& analysis) const {
  LanlDayResult result;
  result.challenge = challenge;
  result.rare_domains = analysis.rare.size();
  result.automated_pairs = analysis.automation.pair_count();

  const core::DayState state{analysis.graph,  analysis.rare,
                             analysis.automation,
                             detector_.pipeline().ua_history(),
                             scenario_.simulator().whois(), analysis.day,
                             features::WhoisDefaults{}};
  const core::LanlScorer scorer(state, config_.scorer);

  std::vector<graph::HostId> seed_hosts;
  for (const std::string& host : challenge.hint_hosts) {
    const graph::HostId id = analysis.graph.find_host(host);
    if (id != graph::kNoId) seed_hosts.push_back(id);
  }

  std::vector<graph::DomainId> seed_domains;
  if (seed_hosts.empty()) {
    // Case 4: no hints. Seed with the challenge C&C sweep — every rare
    // automated domain with two hosts beaconing at matching periods.
    for (const graph::DomainId domain : analysis.automation.automated_domains()) {
      if (!analysis.rare.contains(domain)) continue;
      if (scorer.detect_cc(domain)) seed_domains.push_back(domain);
    }
  }

  core::BpConfig bp;
  bp.sim_threshold = config_.sim_threshold;
  bp.max_iterations = config_.max_iterations;
  const core::BpResult bp_result = core::belief_propagation(
      analysis.graph, analysis.rare, seed_hosts, seed_domains, scorer, bp);

  result.trace = bp_result.trace;
  // Case-4 seeds are themselves detections (nothing was given); in the
  // hinted cases, hosts were given but domains were not, so every labeled
  // domain counts as a detection either way.
  for (const graph::DomainId domain : bp_result.domains) {
    result.detected_domains.push_back(analysis.graph.domain_name(domain));
  }
  for (const graph::HostId host : bp_result.hosts) {
    result.detected_hosts.push_back(analysis.graph.host_name(host));
  }
  result.counts =
      score_detections(result.detected_domains, challenge.answer_domains);
  return result;
}

void LanlRunner::finish_day(util::Day day) {
  api::SimSource source(scenario_.simulator(), day, day);
  detector_.ingest(source);
}

LanlChallengeResult LanlRunner::run_challenge() {
  bootstrap();
  LanlChallengeResult result;
  // One pass over the challenge window through the detector's multi-day
  // verb: every day is analyzed (case days additionally scored against
  // their challenge) and committed to the histories from its day graph —
  // equivalent to the old per-day events-form update, since the graph
  // folds exactly the day's events. The analysis fan-outs run on the
  // detector's persistent worker pool.
  api::SimSource source(scenario_.simulator(), scenario_.challenge_begin(),
                        scenario_.challenge_end());
  detector_.analyze_days(
      source, [&](util::Day day, const core::DayAnalysis& analysis) {
        const auto it = std::find_if(
            scenario_.cases().begin(), scenario_.cases().end(),
            [day](const sim::LanlCase& c) { return c.day == day; });
        if (it == scenario_.cases().end()) return;
        LanlDayResult day_result = run_case(*it, analysis);
        const int case_id = it->case_id;
        if (it->training) {
          result.per_case_training[case_id] += day_result.counts;
          result.training_total += day_result.counts;
        } else {
          result.per_case_testing[case_id] += day_result.counts;
          result.testing_total += day_result.counts;
        }
        result.total += day_result.counts;
        result.days.push_back(std::move(day_result));
      });
  return result;
}

}  // namespace eid::eval
