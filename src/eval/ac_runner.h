// End-to-end runner for the AC enterprise scenario (§VI): profiles January,
// trains the two regression models on two weeks of labeled data, then walks
// February in daily operation mode. Benchmarks receive each day's analysis
// through a callback so they can sweep thresholds without re-simulating.
//
// Ingestion goes through the streaming facade (api::Detector over
// api::SimSource), so the runner exercises the same chunked path a
// production deployment uses.
#pragma once

#include <functional>

#include "api/detector.h"
#include "eval/metrics.h"
#include "sim/ac.h"

namespace eid::eval {

struct AcRunnerConfig {
  core::PipelineConfig pipeline{};
  /// Days at the end of January used as labeled regression-training days
  /// (the paper trains on two weeks of labeled automated domains).
  int training_days = 14;
};

class AcRunner {
 public:
  AcRunner(sim::AcScenario& scenario, AcRunnerConfig config = {});

  /// Profile + train over January; returns regression diagnostics.
  core::TrainingReport train();

  /// Walk the February operation month. For each day the callback receives
  /// the day and the full pre-threshold analysis; histories are updated
  /// after the callback returns. Must be called after train().
  using DayCallback =
      std::function<void(util::Day day, const core::DayAnalysis& analysis)>;
  void run_operation(const DayCallback& callback);

  api::Detector& detector() { return detector_; }
  core::Pipeline& pipeline() { return detector_.pipeline(); }
  sim::AcScenario& scenario() { return scenario_; }

  /// Aggregate of one full operation month at the config thresholds:
  /// C&C detections, no-hint BP and SOC-hints BP, all validated.
  struct MonthReport {
    ValidationCounts cc;
    ValidationCounts nohint;
    ValidationCounts sochints;
    std::vector<std::string> cc_domains;
    std::vector<std::string> nohint_domains;
    std::vector<std::string> sochints_domains;
    std::size_t nohint_hosts = 0;
    std::size_t automated_domains = 0;  ///< distinct, over the month
  };

  /// Convenience: run the whole month in both modes with given thresholds.
  MonthReport run_month(double tc, double ts_nohint, double ts_sochints);

 private:
  sim::AcScenario& scenario_;
  AcRunnerConfig config_;
  api::Detector detector_;
  bool trained_ = false;
};

}  // namespace eid::eval
