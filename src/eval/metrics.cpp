#include "eval/metrics.h"

#include <unordered_set>

namespace eid::eval {

DetectionCounts score_detections(const std::vector<std::string>& detected,
                                 const std::vector<std::string>& answers) {
  DetectionCounts counts;
  const std::unordered_set<std::string> answer_set(answers.begin(), answers.end());
  std::unordered_set<std::string> found;
  for (const std::string& domain : detected) {
    if (answer_set.contains(domain)) {
      found.insert(domain);
    } else {
      ++counts.fp;
    }
  }
  counts.tp = found.size();
  counts.fn = answer_set.size() - found.size();
  return counts;
}

const char* validation_category_name(ValidationCategory category) {
  switch (category) {
    case ValidationCategory::KnownMalicious: return "VirusTotal and SOC";
    case ValidationCategory::NewMalicious: return "New malicious";
    case ValidationCategory::Suspicious: return "Suspicious";
    case ValidationCategory::Legitimate: return "Legitimate";
  }
  return "?";
}

ValidationCategory classify_detection(const std::string& domain,
                                      const sim::IntelOracle& oracle) {
  if (oracle.vt_reported(domain) || oracle.soc_ioc(domain)) {
    return ValidationCategory::KnownMalicious;
  }
  switch (oracle.truth().label(domain)) {
    case sim::TruthLabel::Malicious: return ValidationCategory::NewMalicious;
    case sim::TruthLabel::Grayware: return ValidationCategory::Suspicious;
    case sim::TruthLabel::Benign: return ValidationCategory::Legitimate;
  }
  return ValidationCategory::Legitimate;
}

ValidationCounts validate_detections(const std::vector<std::string>& detected,
                                     const sim::IntelOracle& oracle) {
  ValidationCounts counts;
  for (const std::string& domain : detected) {
    switch (classify_detection(domain, oracle)) {
      case ValidationCategory::KnownMalicious: ++counts.known_malicious; break;
      case ValidationCategory::NewMalicious: ++counts.new_malicious; break;
      case ValidationCategory::Suspicious: ++counts.suspicious; break;
      case ValidationCategory::Legitimate: ++counts.legitimate; break;
    }
  }
  return counts;
}

}  // namespace eid::eval
