#include "eval/ac_runner.h"

#include <algorithm>
#include <unordered_set>

#include "api/sources.h"

namespace eid::eval {

AcRunner::AcRunner(sim::AcScenario& scenario, AcRunnerConfig config)
    : scenario_(scenario),
      config_(config),
      detector_(config.pipeline, scenario.simulator().whois()) {}

core::TrainingReport AcRunner::train() {
  const util::Day first = scenario_.training_begin();
  const util::Day last = scenario_.training_end();
  const util::Day train_from = last - config_.training_days + 1;
  const sim::IntelOracle& oracle = scenario_.oracle();
  const core::LabelFn intel = [&oracle](const std::string& domain) {
    return oracle.vt_reported(domain);
  };
  if (train_from > first) {
    api::SimSource bootstrap(scenario_.simulator(), first, train_from - 1);
    detector_.ingest(bootstrap);
  }
  api::SimSource labeled(scenario_.simulator(), std::max(first, train_from), last);
  detector_.ingest(labeled, intel);
  trained_ = true;
  return detector_.finalize_training();
}

void AcRunner::run_operation(const DayCallback& callback) {
  // One day-pipelined pass over the whole operation window: with
  // pipeline_depth > 1 each day's analysis + callback (the threshold
  // sweeps) overlaps the simulation of the next day.
  api::SimSource source(scenario_.simulator(), scenario_.operation_begin(),
                        scenario_.operation_end());
  detector_.analyze_days(source, callback);
}

AcRunner::MonthReport AcRunner::run_month(double tc, double ts_nohint,
                                          double ts_sochints) {
  MonthReport report;
  core::SocSeeds seeds;
  seeds.domains = scenario_.ioc_seeds();
  const std::unordered_set<std::string> seed_set(seeds.domains.begin(),
                                                 seeds.domains.end());
  std::unordered_set<std::string> cc_seen;
  std::unordered_set<std::string> nohint_seen;
  std::unordered_set<std::string> sochints_seen;
  std::unordered_set<std::string> nohint_hosts;
  std::unordered_set<std::string> automated_seen;

  core::Pipeline& pipeline = detector_.pipeline();
  run_operation([&](util::Day /*day*/, const core::DayAnalysis& analysis) {
    for (const core::ScoredDomain& dom : pipeline.score_automated(analysis)) {
      automated_seen.insert(dom.name);
    }
    const auto cc = pipeline.detect_cc(analysis, tc);
    for (const core::ScoredDomain& dom : cc) cc_seen.insert(dom.name);

    const core::BpRunReport nohint =
        pipeline.run_bp_nohint(analysis, cc, ts_nohint);
    for (const core::ScoredDomain& dom : cc) nohint_seen.insert(dom.name);
    for (const core::DetectedDomain& dom : nohint.domains) {
      nohint_seen.insert(dom.name);
    }
    for (const std::string& host : nohint.hosts) nohint_hosts.insert(host);

    const core::BpRunReport sochints =
        pipeline.run_bp_sochints(analysis, seeds, ts_sochints);
    for (const core::DetectedDomain& dom : sochints.domains) {
      // Seed IOC domains are inputs, not detections (§VI-D).
      if (!seed_set.contains(dom.name)) sochints_seen.insert(dom.name);
    }
  });

  report.cc_domains.assign(cc_seen.begin(), cc_seen.end());
  report.nohint_domains.assign(nohint_seen.begin(), nohint_seen.end());
  report.sochints_domains.assign(sochints_seen.begin(), sochints_seen.end());
  report.cc = validate_detections(report.cc_domains, scenario_.oracle());
  report.nohint = validate_detections(report.nohint_domains, scenario_.oracle());
  report.sochints =
      validate_detections(report.sochints_domains, scenario_.oracle());
  report.nohint_hosts = nohint_hosts.size();
  report.automated_domains = automated_seen.size();
  return report;
}

}  // namespace eid::eval
