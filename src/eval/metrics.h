// Evaluation metrics as defined by the paper:
//   TDR (true detection rate)  = TP / detected        (§V-C)
//   FDR (false detection rate) = FP / detected = 1 - TDR
//   FNR (false negative rate)  = FN / (TP + FN)
//   NDR (new-discovery rate)   = (new malicious + suspicious) / detected (§VI-B)
// plus the four validation categories of §VI-B.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/oracle.h"

namespace eid::eval {

/// Binary detection counts (LANL-style evaluation, Table III).
struct DetectionCounts {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;

  std::size_t detected() const { return tp + fp; }
  double tdr() const {
    return detected() > 0 ? static_cast<double>(tp) / static_cast<double>(detected())
                          : 0.0;
  }
  double fdr() const { return detected() > 0 ? 1.0 - tdr() : 0.0; }
  double fnr() const {
    const std::size_t relevant = tp + fn;
    return relevant > 0 ? static_cast<double>(fn) / static_cast<double>(relevant)
                        : 0.0;
  }

  DetectionCounts& operator+=(const DetectionCounts& other) {
    tp += other.tp;
    fp += other.fp;
    fn += other.fn;
    return *this;
  }
};

/// Count detections against an answer set.
DetectionCounts score_detections(const std::vector<std::string>& detected,
                                 const std::vector<std::string>& answers);

/// Validation category of a detected domain (§VI-B). "Known" means an
/// anti-virus scanner or the IOC list already reports it; "new malicious"
/// and "suspicious" are confirmed by (simulated) manual investigation.
enum class ValidationCategory {
  KnownMalicious,  ///< VirusTotal- or IOC-reported
  NewMalicious,    ///< truly malicious, unknown to every feed
  Suspicious,      ///< grayware (ad networks, toolbars, trackers, ...)
  Legitimate,      ///< benign: a false detection
};

const char* validation_category_name(ValidationCategory category);

ValidationCategory classify_detection(const std::string& domain,
                                      const sim::IntelOracle& oracle);

/// Per-category tallies for a set of detected domains (Fig. 6 stacks).
struct ValidationCounts {
  std::size_t known_malicious = 0;
  std::size_t new_malicious = 0;
  std::size_t suspicious = 0;
  std::size_t legitimate = 0;

  std::size_t total() const {
    return known_malicious + new_malicious + suspicious + legitimate;
  }
  std::size_t bad() const { return known_malicious + new_malicious + suspicious; }
  double tdr() const {
    return total() > 0 ? static_cast<double>(bad()) / static_cast<double>(total())
                       : 0.0;
  }
  double fdr() const { return total() > 0 ? 1.0 - tdr() : 0.0; }
  double ndr() const {
    return total() > 0 ? static_cast<double>(new_malicious + suspicious) /
                             static_cast<double>(total())
                       : 0.0;
  }

  ValidationCounts& operator+=(const ValidationCounts& other) {
    known_malicious += other.known_malicious;
    new_malicious += other.new_malicious;
    suspicious += other.suspicious;
    legitimate += other.legitimate;
    return *this;
  }
};

ValidationCounts validate_detections(const std::vector<std::string>& detected,
                                     const sim::IntelOracle& oracle);

}  // namespace eid::eval
