#include "eval/roc.h"

#include <algorithm>

namespace eid::eval {

std::vector<RocPoint> roc_curve(std::span<const std::pair<double, bool>> scored) {
  std::vector<std::pair<double, bool>> sorted(scored.begin(), scored.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t positives = 0;
  std::size_t negatives = 0;
  for (const auto& [score, positive] : sorted) {
    (positive ? positives : negatives) += 1;
  }
  std::vector<RocPoint> curve;
  if (positives == 0 || negatives == 0) return curve;
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t i = 0;
  while (i < sorted.size()) {
    const double threshold = sorted[i].first;
    // Consume the whole tie group before emitting a point.
    while (i < sorted.size() && sorted[i].first == threshold) {
      (sorted[i].second ? tp : fp) += 1;
      ++i;
    }
    curve.push_back(RocPoint{threshold,
                             static_cast<double>(tp) / static_cast<double>(positives),
                             static_cast<double>(fp) / static_cast<double>(negatives)});
  }
  return curve;
}

double roc_auc(std::span<const std::pair<double, bool>> scored) {
  // Mann-Whitney: AUC = (mean rank of positives - (P+1)/2) / N.
  std::vector<std::pair<double, bool>> sorted(scored.begin(), scored.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const std::size_t n = sorted.size();
  std::size_t positives = 0;
  for (const auto& [score, positive] : sorted) positives += positive ? 1 : 0;
  const std::size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  double positive_rank_sum = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && sorted[j].first == sorted[i].first) ++j;
    const double mid_rank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (sorted[k].second) positive_rank_sum += mid_rank;
    }
    i = j;
  }
  const double u = positive_rank_sum -
                   static_cast<double>(positives) *
                       (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

}  // namespace eid::eval
