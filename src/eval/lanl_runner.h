// End-to-end runner for the LANL challenge (§V): bootstraps the domain
// history over February, walks March chronologically, and on each campaign
// day runs belief propagation with the LANL scorer — seeded by the case's
// hint hosts, or by the challenge-specific C&C sweep when no hints exist
// (case 4). Produces the per-case counts of Table III.
#pragma once

#include <unordered_set>

#include "api/detector.h"
#include "core/belief_propagation.h"
#include "core/scorers.h"
#include "eval/metrics.h"
#include "profile/domain_history.h"
#include "sim/lanl.h"

namespace eid::eval {

struct LanlRunnerConfig {
  timing::PeriodicityDetector::Params periodicity{};  ///< W = 10 s, JT = 0.06
  core::LanlScorerParams scorer{};
  double sim_threshold = 0.25;  ///< Ts chosen on the training set (§V-B)
  std::size_t max_iterations = 5;
  std::size_t popularity_threshold = 10;
};

/// Result of one challenge day.
struct LanlDayResult {
  sim::LanlCase challenge;
  std::vector<std::string> detected_domains;
  std::vector<std::string> detected_hosts;
  DetectionCounts counts;
  std::vector<core::BpEvent> trace;  ///< Fig. 4-style walkthrough data
  std::size_t rare_domains = 0;
  std::size_t automated_pairs = 0;
};

struct LanlChallengeResult {
  std::vector<LanlDayResult> days;
  DetectionCounts per_case_training[5];  ///< index 1..4
  DetectionCounts per_case_testing[5];
  DetectionCounts training_total;
  DetectionCounts testing_total;
  DetectionCounts total;
};

class LanlRunner {
 public:
  LanlRunner(sim::LanlScenario& scenario, LanlRunnerConfig config = {});

  /// Ingest the February bootstrap month into the domain history.
  void bootstrap();

  /// Analyze one day (graph + rare + automation). Does not update history.
  core::DayAnalysis analyze_day(util::Day day);

  /// Analyze an already-reduced event stream (avoids re-simulating when the
  /// caller also needs the events).
  core::DayAnalysis analyze_events(const std::vector<logs::ConnEvent>& events,
                                   util::Day day) const;

  /// Run one challenge case against an analysis of its day.
  LanlDayResult run_case(const sim::LanlCase& challenge,
                         const core::DayAnalysis& analysis) const;

  /// Update the history with a day's traffic (call after analysis).
  void finish_day(util::Day day);

  /// Update the history from an already-reduced event stream.
  void update_history_events(const std::vector<logs::ConnEvent>& events);

  /// Bootstrap + walk all of March + score every case.
  LanlChallengeResult run_challenge();

  const profile::DomainHistory& history() const {
    return detector_.pipeline().domain_history();
  }

 private:
  sim::LanlScenario& scenario_;
  LanlRunnerConfig config_;
  /// Streaming facade; only the history/analysis layers are exercised (the
  /// LANL challenge scores with LanlScorer, not the trained regressions).
  api::Detector detector_;
};

}  // namespace eid::eval
