// ROC analysis for scored detections: threshold sweeps like Fig. 5/6 are
// points on a ROC curve, and AUC summarizes how well a scoring model ranks
// malicious above benign independent of any single threshold choice.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace eid::eval {

/// One operating point.
struct RocPoint {
  double threshold = 0.0;
  double tpr = 0.0;  ///< true positive rate at score >= threshold
  double fpr = 0.0;  ///< false positive rate at score >= threshold
};

/// Full ROC curve from (score, is_positive) pairs: one point per distinct
/// score, ordered from the highest threshold (0,0 end) to the lowest
/// (1,1 end). Empty input yields an empty curve.
std::vector<RocPoint> roc_curve(std::span<const std::pair<double, bool>> scored);

/// Area under the ROC curve via the Mann-Whitney U statistic (ties count
/// half). 0.5 = random ranking, 1.0 = perfect. Returns 0.5 when either
/// class is empty.
double roc_auc(std::span<const std::pair<double, bool>> scored);

}  // namespace eid::eval
